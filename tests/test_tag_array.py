"""Tag-array tests: lookup, reservation, fill, eviction, statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.cache.tag_array import Eviction, LineState, TagArray


def make(n_sets=4, assoc=2, policy="lru"):
    return TagArray("t", n_sets, assoc, policy)


class TestBasics:
    def test_pow2_sets_required(self):
        with pytest.raises(ConfigError):
            TagArray("t", 3, 2)

    def test_miss_then_hit_after_fill(self):
        tags = make()
        assert not tags.lookup(0x10, 0)
        tags.fill(0x10, 1)
        assert tags.lookup(0x10, 2)
        assert tags.lookups.denominator == 2
        assert tags.lookups.numerator == 1

    def test_reserved_line_is_not_a_hit(self):
        tags = make()
        tags.reserve(0x20, 0)
        assert not tags.lookup(0x20, 1)
        assert tags.state_of(0x20) is LineState.RESERVED

    def test_fill_promotes_reserved(self):
        tags = make()
        tags.reserve(0x20, 0)
        evicted = tags.fill(0x20, 1)
        assert evicted is None  # eviction happened at reserve time
        assert tags.state_of(0x20) is LineState.VALID


class TestEviction:
    def test_lru_eviction_order(self):
        tags = make(n_sets=1, assoc=2)
        tags.fill(1, 10)
        tags.fill(2, 20)
        tags.lookup(1, 30)  # 1 becomes MRU
        evicted = tags.fill(3, 40)
        assert evicted == Eviction(line=2, dirty=False)

    def test_dirty_eviction_reports_dirty(self):
        tags = make(n_sets=1, assoc=1)
        tags.fill(1, 0, dirty=True)
        evicted = tags.fill(2, 1)
        assert evicted.dirty and evicted.line == 1

    def test_mark_dirty_then_evict(self):
        tags = make(n_sets=1, assoc=1)
        tags.fill(1, 0)
        tags.mark_dirty(1)
        evicted = tags.fill(2, 1)
        assert evicted.dirty

    def test_reservation_failure_when_all_ways_reserved(self):
        tags = make(n_sets=1, assoc=2)
        assert tags.reserve(1, 0) is None
        assert tags.reserve(2, 0) is None
        assert tags.reserve(3, 0) is False
        assert tags.reservation_fails == 1

    def test_reserved_ways_never_evicted(self):
        tags = make(n_sets=1, assoc=2)
        tags.reserve(1, 0)
        tags.fill(2, 1)  # valid line in the other way
        evicted = tags.reserve(3, 2)
        assert evicted is not None and evicted.line == 2
        assert tags.state_of(1) is LineState.RESERVED


class TestInvalidate:
    def test_invalidate_valid_line(self):
        tags = make()
        tags.fill(5, 0)
        assert tags.invalidate(5)
        assert not tags.lookup(5, 1)

    def test_invalidate_absent_is_noop(self):
        tags = make()
        assert not tags.invalidate(5)

    def test_invalidate_reserved_is_refused(self):
        tags = make()
        tags.reserve(5, 0)
        assert not tags.invalidate(5)
        assert tags.state_of(5) is LineState.RESERVED


class TestOccupancy:
    def test_occupancy_counts(self):
        tags = make(n_sets=2, assoc=2)
        tags.fill(0, 0)
        tags.fill(1, 0)
        tags.reserve(2, 0)
        assert tags.occupancy() == 2
        assert tags.reserved_count() == 1


@given(
    st.lists(st.integers(0, 30), min_size=1, max_size=200),
)
def test_fill_lookup_consistency(lines):
    """After filling a line it stays a hit until a conflicting fill evicts it."""
    tags = TagArray("t", 4, 2)
    resident: dict[int, int] = {}  # line -> fill order
    for t, line in enumerate(lines):
        evicted = tags.fill(line, t)
        resident[line] = t
        if evicted is not None:
            assert evicted.line in resident
            del resident[evicted.line]
        # every resident line must hit; capacity respected per set
        assert tags.occupancy() == len(resident)
    for line in resident:
        assert tags.lookup(line, 10_000, count=False)
