"""Assorted focused tests: ring geometry, L2 writeback addressing, GTO
end-to-end, report constants wiring."""

import dataclasses

import pytest

from repro.cache.l2 import L2Slice
from repro.core.metrics import run_kernel
from repro.dram.controller import DRAMChannel
from repro.icnt.crossbar import PacketSink
from repro.icnt.ring import RingNetwork
from repro.mem.address import AddressMapper
from repro.mem.queue import StatQueue
from repro.mem.request import AccessKind, MemoryRequest
from repro.sim.config import GPUConfig, tiny_gpu
from repro.workloads.synthetic import SyntheticKernelSpec, build_kernel


class TestRingGeometry:
    def make(self, n_in, n_out):
        cfg = GPUConfig()
        sources = [StatQueue(f"s{i}", 8) for i in range(n_in)]
        outputs = [StatQueue(f"d{i}", 8) for i in range(n_out)]
        sinks = [
            PacketSink(
                can_accept=(lambda q: lambda _r: q.can_push())(q),
                accept=(lambda q: lambda r, now: q.push(r, now))(q),
            )
            for q in outputs
        ]
        ring = RingNetwork(
            "r", cfg, sources, sinks, route=lambda r: r.line % n_out,
            flit_count=lambda r: 1, hop_latency=0)
        return ring, sources, outputs

    def test_positions_cover_all_stations(self):
        ring, _, _ = self.make(3, 5)
        positions = ring._source_pos + ring._sink_pos
        assert sorted(positions) == list(range(8))

    def test_shorter_direction_chosen(self):
        ring, _, _ = self.make(2, 2)
        n = ring._n_stations
        for src in range(len(ring._source_pos)):
            for dst in range(len(ring._sink_pos)):
                _, hops = ring._path(
                    ring._source_pos[src], ring._sink_pos[dst])
                assert hops <= n // 2


class TestL2WritebackAddressing:
    def test_writeback_maps_back_to_same_partition(self):
        """The global line reconstructed for a writeback must route to the
        partition that evicted it."""
        cfg = tiny_gpu()
        mapper = AddressMapper(cfg)
        for pid in range(cfg.n_partitions):
            l2 = L2Slice(f"l2{pid}", cfg, mapper, pid)
            dram = DRAMChannel(f"d{pid}", cfg, mapper, pid)
            l2.dram = dram
            dram.l2 = l2
            cause = MemoryRequest(
                rid=1, kind=AccessKind.LOAD, line=pid, sm_id=0, warp_id=0)
            l2._emit_writeback(local_line=37, cause=cause, now=0)
            writeback = l2.miss_queue.pop(1)
            assert writeback.kind is AccessKind.WRITEBACK
            assert mapper.partition(writeback.line) == pid
            assert mapper.local_line(writeback.line) == 37


class TestGTOEndToEnd:
    def test_gto_suite_kernel_completes_with_same_work(self):
        spec = SyntheticKernelSpec(
            name="g", pattern="hot_cold", iterations=8, compute_per_iter=3,
            loads_per_iter=2, hot_lines=64, p_hot=0.8,
            working_set_lines=512, mlp_limit=3)
        lrr = run_kernel(
            tiny_gpu(), build_kernel(dataclasses.replace(spec, scheduler="lrr")))
        gto = run_kernel(
            tiny_gpu(), build_kernel(dataclasses.replace(spec, scheduler="gto")))
        assert lrr.instructions == gto.instructions
        assert gto.cycles > 0
        # Policies genuinely differ dynamically.
        assert gto.cycles != lrr.cycles


class TestMagicWithFeatures:
    def test_magic_mode_with_write_back_policy(self):
        cfg = tiny_gpu().with_magic_memory(30)
        cfg = dataclasses.replace(
            cfg, l1=dataclasses.replace(cfg.l1, write_policy="write_back"))
        spec = SyntheticKernelSpec(
            name="m", pattern="stream", iterations=5, compute_per_iter=1,
            loads_per_iter=1, stores_per_iter=2)
        metrics = run_kernel(cfg, build_kernel(spec))
        assert metrics.cycles > 0
        assert metrics.dram_reads == 0  # no memory system below L1

    def test_magic_mode_with_warp_limit(self):
        cfg = tiny_gpu().with_magic_memory(30)
        cfg = dataclasses.replace(
            cfg, core=dataclasses.replace(cfg.core, active_warp_limit=1))
        spec = SyntheticKernelSpec(
            name="m", pattern="stream", iterations=4, compute_per_iter=1,
            loads_per_iter=1)
        metrics = run_kernel(cfg, build_kernel(spec))
        assert metrics.cycles > 0
