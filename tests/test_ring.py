"""Ring-interconnect tests."""

import dataclasses

import pytest

from repro.core.metrics import run_kernel
from repro.errors import ConfigError
from repro.gpu import GPU
from repro.icnt.crossbar import PacketSink
from repro.icnt.ring import RingNetwork
from repro.mem.queue import StatQueue
from repro.mem.request import AccessKind, MemoryRequest
from repro.sim.config import GPUConfig, ICNTConfig, tiny_gpu
from repro.workloads.suite import get_benchmark


def req(rid, line):
    return MemoryRequest(rid=rid, kind=AccessKind.LOAD, line=line, sm_id=0, warp_id=0)


def make_ring(n_in=2, n_out=2, hop_latency=2, sink_capacity=64, payload=False):
    cfg = GPUConfig()
    sources = [StatQueue(f"s{i}", 64) for i in range(n_in)]
    outputs = [StatQueue(f"d{i}", sink_capacity) for i in range(n_out)]
    sinks = [
        PacketSink(
            can_accept=(lambda q: lambda _r: q.can_push())(q),
            accept=(lambda q: lambda r, now: q.push(r, now))(q),
        )
        for q in outputs
    ]
    ring = RingNetwork(
        "ring", cfg, sources=sources, sinks=sinks,
        route=lambda r: r.line % n_out,
        flit_count=lambda r: cfg.response_flits(payload),
        hop_latency=hop_latency,
    )
    return ring, sources, outputs


class TestRingBasics:
    def test_negative_hop_latency_rejected(self):
        with pytest.raises(ConfigError):
            make_ring(hop_latency=-1)

    def test_packet_traverses_and_delivers(self):
        ring, sources, outputs = make_ring()
        sources[0].push(req(0, 0), 0)
        for c in range(50):
            ring.step(c)
        assert len(outputs[0]) == 1
        assert ring.packets_delivered == 1
        assert ring.mean_hops >= 1

    def test_hop_latency_delays_delivery(self):
        slow, s_src, s_out = make_ring(hop_latency=20)
        fast, f_src, f_out = make_ring(hop_latency=0)
        slow_req, fast_req = req(0, 1), req(1, 1)
        s_src[0].push(slow_req, 0)
        f_src[0].push(fast_req, 0)
        for c in range(200):
            slow.step(c)
            fast.step(c)
        assert (
            slow_req.timestamps["icnt_out"] > fast_req.timestamps["icnt_out"]
        )

    def test_full_sink_blocks_then_drains(self):
        ring, sources, outputs = make_ring(sink_capacity=1)
        sources[0].push(req(0, 0), 0)
        sources[1].push(req(1, 0), 0)
        for c in range(100):
            ring.step(c)
        assert len(outputs[0]) == 1
        assert not ring.is_idle()
        outputs[0].pop(100)
        for c in range(100, 200):
            ring.step(c)
        assert len(outputs[0]) == 1
        assert ring.is_idle()

    def test_back_pressure_into_sources(self):
        """Arrival-buffer and link gates leave excess work in the source."""
        ring, sources, outputs = make_ring(sink_capacity=1, payload=True)
        for i in range(30):
            sources[0].push(req(i, 0), 0)
        ring.step(0)
        assert len(sources[0]) > 0  # not all injected at once

    def test_utilization_bounded(self):
        ring, sources, outputs = make_ring(payload=True)
        for i in range(10):
            sources[i % 2].push(req(i, i % 2), 0)
        for c in range(300):
            ring.step(c)
        assert 0.0 < ring.utilization <= 1.0


class TestRingEndToEnd:
    def ring_config(self):
        cfg = tiny_gpu()
        return dataclasses.replace(
            cfg, icnt=dataclasses.replace(cfg.icnt, topology="ring"))

    def test_gpu_builds_ring(self):
        gpu = GPU(self.ring_config(), get_benchmark("nn", 0.1))
        assert isinstance(gpu.request_xbar, RingNetwork)
        assert isinstance(gpu.response_xbar, RingNetwork)

    def test_suite_runs_on_ring(self):
        m = run_kernel(self.ring_config(), get_benchmark("sc", 0.15))
        assert m.cycles > 0
        assert m.ipc > 0

    def test_topology_validation(self):
        with pytest.raises(ConfigError):
            ICNTConfig(topology="torus")
