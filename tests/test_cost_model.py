"""Cost-model and pareto-frontier tests."""

import pytest

from repro.core.cost_model import (
    DEFAULT_COSTS,
    CostEffectiveness,
    configuration_cost,
    cost_effectiveness,
    level_cost,
    pareto_frontier,
    render_cost_effectiveness,
)
from repro.core.design_space import TABLE_I
from repro.errors import ConfigError


class TestCosts:
    def test_every_table_row_has_a_cost(self):
        assert set(DEFAULT_COSTS) == {p.key for p in TABLE_I}

    def test_default_costs_normalized_to_one(self):
        assert sum(DEFAULT_COSTS.values()) == pytest.approx(1.0)

    def test_level_costs_sum_to_total(self):
        total = sum(level_cost(l) for l in ("dram", "l2", "l1"))
        assert total == pytest.approx(1.0)

    def test_configuration_cost_additive(self):
        assert configuration_cost(("l1", "l2")) == pytest.approx(
            level_cost("l1") + level_cost("l2"))

    def test_missing_cost_rejected(self):
        with pytest.raises(ConfigError):
            level_cost("l2", {"flit_size": 0.5})

    def test_negative_cost_rejected(self):
        bad = dict(DEFAULT_COSTS)
        bad["flit_size"] = -0.1
        with pytest.raises(ConfigError):
            level_cost("l2", bad)


class TestEffectiveness:
    def test_efficiency(self):
        ce = CostEffectiveness("x", ("l2",), gain=0.5, cost=0.25)
        assert ce.efficiency == pytest.approx(2.0)

    def test_zero_cost_edge_cases(self):
        assert CostEffectiveness("x", (), 0.5, 0.0).efficiency == float("inf")
        assert CostEffectiveness("x", (), 0.0, 0.0).efficiency == 0.0

    def test_cost_effectiveness_from_exploration(self):
        class FakeResult:
            runs = {"baseline": {}, "l2": {}, "dram": {}}

            def average_gain(self, label):
                return {"l2": 0.5, "dram": 0.1}[label]

        points = cost_effectiveness(
            FakeResult(), {"baseline": (), "l2": ("l2",), "dram": ("dram",)})
        assert [p.label for p in points][0] in ("l2", "dram")
        assert points[0].efficiency >= points[-1].efficiency


class TestPareto:
    def test_dominated_points_removed(self):
        a = CostEffectiveness("cheap-good", (), gain=0.5, cost=0.1)
        b = CostEffectiveness("costly-worse", (), gain=0.4, cost=0.5)
        c = CostEffectiveness("costly-best", (), gain=0.9, cost=0.6)
        frontier = pareto_frontier([a, b, c])
        assert [p.label for p in frontier] == ["cheap-good", "costly-best"]

    def test_equal_points_both_survive(self):
        a = CostEffectiveness("a", (), gain=0.5, cost=0.2)
        b = CostEffectiveness("b", (), gain=0.5, cost=0.2)
        assert len(pareto_frontier([a, b])) == 2

    def test_render(self):
        a = CostEffectiveness("a", ("l2",), gain=0.5, cost=0.2)
        text = render_cost_effectiveness([a], [a])
        assert "a" in text and "yes" in text
