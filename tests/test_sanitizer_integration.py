"""Full-simulation runs with the sanitizer attached (positive path).

The acceptance bar for the sanitizer is that it proves the invariants on
*real* workloads, not just hand-built structures: three paper-suite
benchmarks run to completion on the tiny configuration with every check
enabled, every tracked request retires, and attaching the sanitizer does
not perturb simulated behaviour.
"""

import pytest

from repro.analysis import Sanitizer
from repro.core.metrics import run_kernel
from repro.gpu import GPU
from repro.sim.config import tiny_gpu
from repro.workloads.suite import get_benchmark

#: Three suite entries with deliberately different memory behaviour:
#: nn (streaming), sc (cache-thrashing random), lbm (write-heavy).
BENCHMARKS = ("nn", "sc", "lbm")
SCALE = 0.2


@pytest.mark.parametrize("name", BENCHMARKS)
class TestSuiteRunsClean:
    def test_every_cycle_checked(self, name):
        gpu = GPU(tiny_gpu(), get_benchmark(name, SCALE))
        sanitizer = Sanitizer.attach(gpu, interval=1)
        gpu.run(max_cycles=500_000)
        stats = sanitizer.stats()
        # on_cycle ran every cycle plus the finalize check.
        assert stats["checks_run"] == gpu.cycles + 1
        assert stats["requests_tracked"] > 0
        assert stats["requests_retired"] == stats["requests_tracked"]
        assert stats["requests_in_flight"] == 0

    def test_epoch_interval_checked(self, name):
        gpu = GPU(tiny_gpu(), get_benchmark(name, SCALE))
        sanitizer = Sanitizer.attach(gpu, interval=64)
        gpu.run(max_cycles=500_000)
        stats = sanitizer.stats()
        assert 0 < stats["checks_run"] < gpu.cycles
        assert stats["requests_in_flight"] == 0

    def test_observationally_transparent(self, name):
        """Attaching the sanitizer must not change simulated behaviour.

        The plain run fast-forwards over idle windows while the sanitized
        run (observers force the naive loop) steps every cycle, so this
        also pins the fast-forward path to the per-cycle one.
        """
        plain = GPU(tiny_gpu(), get_benchmark(name, SCALE))
        plain.run(max_cycles=500_000)
        checked = GPU(tiny_gpu(), get_benchmark(name, SCALE))
        Sanitizer.attach(checked, interval=1)
        checked.run(max_cycles=500_000)
        assert checked.sim.cycles_fast_forwarded == 0
        assert checked.cycles == plain.cycles
        assert checked.instructions == plain.instructions

    def test_transparent_vs_naive_loop(self, name):
        """Sanitized run == run with fast-forward explicitly disabled:
        the observer gate and the manual switch take the same path."""
        naive = GPU(tiny_gpu(), get_benchmark(name, SCALE))
        naive.sim.fast_forward_enabled = False
        naive.run(max_cycles=500_000)
        checked = GPU(tiny_gpu(), get_benchmark(name, SCALE))
        Sanitizer.attach(checked, interval=1)
        checked.run(max_cycles=500_000)
        assert checked.cycles == naive.cycles
        assert checked.instructions == naive.instructions


class TestRunKernelIntegration:
    def test_extras_carry_sanitizer_stats(self):
        metrics = run_kernel(
            tiny_gpu(), get_benchmark("nn", SCALE),
            sanitize=True, sanitize_interval=16)
        stats = metrics.extras["sanitizer"]
        assert stats["requests_in_flight"] == 0
        assert stats["requests_retired"] == stats["requests_tracked"] > 0

    def test_disabled_by_default(self):
        metrics = run_kernel(tiny_gpu(), get_benchmark("nn", SCALE))
        assert "sanitizer" not in metrics.extras

    def test_magic_memory_mode(self):
        config = tiny_gpu().with_magic_memory(200)
        metrics = run_kernel(
            config, get_benchmark("nn", SCALE), sanitize=True,
            sanitize_interval=1)
        stats = metrics.extras["sanitizer"]
        assert stats["requests_in_flight"] == 0
        assert stats["requests_retired"] == stats["requests_tracked"] > 0
