"""Direct unit tests for the synergy analysis (no simulation)."""

import pytest

from repro.core.synergy import (
    DEFAULT_PAIRS,
    SynergyAnalysis,
    SynergyPair,
    analyze_synergy,
)
from repro.errors import ReproError


class FakeResult:
    """Stands in for an ExplorationResult with fixed average gains."""

    def __init__(self, gains):
        self._gains = gains
        self.runs = {label: {} for label in ("baseline", *gains)}

    def average_gain(self, label):
        return self._gains[label]


class TestSynergyPair:
    def test_super_additive(self):
        pair = SynergyPair("l1+l2", ("l1", "l2"), 0.7, 0.6)
        assert pair.synergy == pytest.approx(0.1)
        assert pair.is_super_additive

    def test_sub_additive(self):
        pair = SynergyPair("l1+l2", ("l1", "l2"), 0.5, 0.6)
        assert not pair.is_super_additive


class TestAnalyze:
    def test_paper_numbers_are_super_additive(self):
        """The published averages themselves satisfy the synergy claim."""
        result = FakeResult({
            "l1": 0.04, "l2": 0.59, "dram": 0.11,
            "l1+l2": 0.69, "l2+dram": 0.76,
        })
        analysis = analyze_synergy(result)
        assert analysis.all_super_additive
        by_label = {p.combined_label: p for p in analysis.pairs}
        assert by_label["l1+l2"].synergy == pytest.approx(0.06)
        assert by_label["l2+dram"].synergy == pytest.approx(0.06)

    def test_mean_synergy(self):
        result = FakeResult({
            "l1": 0.0, "l2": 0.2, "dram": 0.1,
            "l1+l2": 0.4, "l2+dram": 0.3,
        })
        analysis = analyze_synergy(result)
        assert analysis.mean_synergy == pytest.approx((0.2 + 0.0) / 2)

    def test_custom_pairs(self):
        result = FakeResult({"l1": 0.1, "dram": 0.1, "l1+l2": 0.5})
        analysis = analyze_synergy(
            result, pairs=(("l1+l2", ("l1", "dram")),))
        assert analysis.pairs[0].sum_of_parts == pytest.approx(0.2)

    def test_missing_label_raises(self):
        result = FakeResult({"l1": 0.1})
        with pytest.raises(ReproError):
            analyze_synergy(result)

    def test_default_pairs_match_paper(self):
        assert DEFAULT_PAIRS == (
            ("l1+l2", ("l1", "l2")),
            ("l2+dram", ("l2", "dram")),
        )

    def test_table_rendering(self):
        analysis = SynergyAnalysis(pairs=(
            SynergyPair("a+b", ("a", "b"), 0.5, 0.3),
        ))
        table = analysis.to_table()
        assert "a+b" in table and "+20.0%" in table
