"""Coalescer tests."""

import pytest
from hypothesis import given, strategies as st

from repro.cores.coalescer import (
    WARP_SIZE,
    Coalescer,
    coalesce,
    masked_lanes,
    strided_lanes,
    unit_stride_lanes,
)
from repro.errors import ConfigError


class TestCoalesce:
    def test_unit_stride_is_one_transaction(self):
        lanes = unit_stride_lanes(base=0, element_bytes=4)
        assert coalesce(lanes, 128) == [0]

    def test_unit_stride_across_line_boundary(self):
        lanes = unit_stride_lanes(base=64, element_bytes=4)
        assert coalesce(lanes, 128) == [0, 1]

    def test_large_stride_fully_diverges(self):
        lanes = strided_lanes(base=0, stride_bytes=128)
        assert coalesce(lanes, 128) == list(range(WARP_SIZE))

    def test_inactive_lanes_skipped(self):
        lanes = masked_lanes(strided_lanes(0, 128), active_mask=0b101)
        assert coalesce(lanes, 128) == [0, 2]

    def test_all_masked_yields_nothing(self):
        lanes = masked_lanes(unit_stride_lanes(0), active_mask=0)
        assert coalesce(lanes, 128) == []

    def test_first_touch_order(self):
        assert coalesce([300, 10, 290], 128) == [2, 0]

    def test_bad_line_size(self):
        with pytest.raises(ConfigError):
            coalesce([0], 100)

    def test_negative_address(self):
        with pytest.raises(ConfigError):
            coalesce([-4], 128)


class TestCoalescerStats:
    def test_histogram_and_means(self):
        c = Coalescer(128)
        c.access(unit_stride_lanes(0))          # 1 txn
        c.access(strided_lanes(0, 128))         # 32 txns
        assert c.stats.accesses == 2
        assert c.stats.transactions == 33
        assert c.stats.mean_transactions_per_access == pytest.approx(16.5)
        assert c.stats.fully_coalesced_fraction == pytest.approx(0.5)

    def test_masked_off_access_not_counted(self):
        c = Coalescer(128)
        c.access(masked_lanes(unit_stride_lanes(0), 0))
        assert c.stats.accesses == 0

    def test_too_many_lanes_rejected(self):
        c = Coalescer(128)
        with pytest.raises(ConfigError):
            c.access([0] * (WARP_SIZE + 1))


@given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=WARP_SIZE))
def test_coalesce_covers_exactly_the_touched_lines(addresses):
    lines = coalesce(addresses, 128)
    assert set(lines) == {a // 128 for a in addresses}
    assert len(lines) == len(set(lines))  # no duplicates
    assert 1 <= len(lines) <= len(addresses)
