"""MemoryRequest / RequestFactory tests."""

from repro.mem.request import AccessKind, MemoryRequest, RequestFactory


class TestAccessKind:
    def test_write_classification(self):
        assert not AccessKind.LOAD.is_write
        assert AccessKind.STORE.is_write
        assert AccessKind.WRITEBACK.is_write


class TestMemoryRequest:
    def make(self):
        return MemoryRequest(
            rid=1, kind=AccessKind.LOAD, line=0x40, sm_id=2, warp_id=3)

    def test_stamp_and_latency(self):
        r = self.make()
        r.stamp("a", 100)
        r.stamp("b", 130)
        assert r.latency("a", "b") == 30

    def test_latency_missing_hop_is_none(self):
        r = self.make()
        r.stamp("a", 100)
        assert r.latency("a", "b") is None
        assert r.latency("z", "a") is None

    def test_is_write_mirrors_kind(self):
        r = self.make()
        assert not r.is_write
        wb = MemoryRequest(
            rid=2, kind=AccessKind.WRITEBACK, line=0, sm_id=-1, warp_id=-1)
        assert wb.is_write

    def test_repr_mentions_direction(self):
        r = self.make()
        assert "req" in repr(r)
        r.is_response = True
        assert "resp" in repr(r)


class TestRequestFactory:
    def test_ids_unique_and_monotone(self):
        factory = RequestFactory()
        rids = [
            factory.make(AccessKind.LOAD, i, 0, 0, now=i).rid
            for i in range(10)
        ]
        assert rids == sorted(set(rids))

    def test_issue_time_recorded(self):
        factory = RequestFactory()
        r = factory.make(AccessKind.STORE, 5, 1, 2, now=42)
        assert r.issued_at == 42
        assert r.sm_id == 1 and r.warp_id == 2

    def test_factories_independent(self):
        a, b = RequestFactory(), RequestFactory()
        assert a.make(AccessKind.LOAD, 0, 0, 0, 0).rid == 0
        assert b.make(AccessKind.LOAD, 0, 0, 0, 0).rid == 0
