"""Behavioural invariants across scaled configurations.

Fast integration checks (tiny config, short kernels) that the Table I
machinery changes simulated behaviour in the physically sensible
direction — the full-magnitude assertions live in benchmarks/.
"""

import dataclasses

import pytest

from repro.core.design_space import scale_level, scale_levels
from repro.core.metrics import run_kernel
from repro.sim.config import fermi_gtx480, tiny_gpu
from repro.workloads.suite import get_benchmark
from repro.workloads.synthetic import SyntheticKernelSpec, build_kernel

#: An L2-bandwidth-hungry probe for the tiny machine.
L2_HUNGRY = build_kernel(SyntheticKernelSpec(
    name="l2hungry", pattern="hot_cold", iterations=16, compute_per_iter=2,
    loads_per_iter=2, txns_per_load=2, hot_lines=96, p_hot=0.9,
    working_set_lines=4096, mlp_limit=6))


class TestScalingDirections:
    @pytest.fixture(scope="class")
    def baseline(self):
        return run_kernel(tiny_gpu(), L2_HUNGRY)

    def test_l2_scaling_never_hurts_the_l2_bound_probe(self, baseline):
        scaled = run_kernel(scale_level(tiny_gpu(), "l2"), L2_HUNGRY)
        assert scaled.ipc >= baseline.ipc * 0.97

    def test_full_scaling_relieves_response_path(self, baseline):
        scaled = run_kernel(
            scale_levels(tiny_gpu(), ("l1", "l2", "dram")), L2_HUNGRY)
        assert (
            scaled.l2_respq.full_fraction
            <= baseline.l2_respq.full_fraction + 0.05
        )
        assert scaled.ipc >= baseline.ipc * 0.97

    def test_scaling_preserves_work(self, baseline):
        scaled = run_kernel(
            scale_levels(tiny_gpu(), ("l1", "l2", "dram")), L2_HUNGRY)
        assert scaled.instructions == baseline.instructions

    def test_deeper_queues_reject_less(self, baseline):
        scaled = run_kernel(scale_level(tiny_gpu(), "l2"), L2_HUNGRY)
        assert scaled.l2_accessq.rejections <= baseline.l2_accessq.rejections


class TestFermiScale:
    def test_fermi_config_runs_the_suite_briefly(self):
        """Smoke test at the full 16-SM / 8-partition topology."""
        metrics = run_kernel(
            fermi_gtx480(), get_benchmark("sc", 0.05), max_cycles=2_000_000)
        assert metrics.cycles > 0
        assert metrics.instructions > 0
        # 48 warps/SM x 16 SMs all retire.
        assert metrics.ipc > 0

    def test_fermi_preserves_sm_partition_ratio(self):
        cfg = fermi_gtx480()
        assert cfg.core.n_sms / cfg.n_partitions == 2.0
        # Total L2 capacity matches the GTX480's 768 KiB.
        assert cfg.l2.size_bytes * cfg.n_partitions == 768 * 1024


class TestMagicVsRealOrdering:
    def test_zero_latency_magic_is_an_upper_bound(self):
        for name in ("nn", "leukocyte"):
            kernel = get_benchmark(name, 0.1)
            real = run_kernel(tiny_gpu(), kernel)
            ideal = run_kernel(tiny_gpu().with_magic_memory(0), kernel)
            assert ideal.ipc >= real.ipc * 0.99, name

    def test_magic_at_measured_latency_brackets_baseline(self):
        """Magic memory at the measured average miss latency lands near the
        real baseline's IPC (the Figure 1 intercept argument)."""
        kernel = get_benchmark("nn", 0.15)
        real = run_kernel(tiny_gpu(), kernel)
        magic = run_kernel(
            tiny_gpu().with_magic_memory(round(real.l1_avg_miss_latency)),
            kernel)
        assert magic.ipc == pytest.approx(real.ipc, rel=0.5)
