"""MSHR table tests: allocation, merging, release, contention statistics."""

import pytest

from repro.cache.mshr import MSHRProbe, MSHRTable
from repro.errors import ConfigError, SimulationError
from repro.mem.request import AccessKind, MemoryRequest


def req(rid, line, kind=AccessKind.LOAD):
    return MemoryRequest(rid=rid, kind=kind, line=line, sm_id=0, warp_id=0)


class TestAllocationAndMerge:
    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            MSHRTable("m", 0, 1)
        with pytest.raises(ConfigError):
            MSHRTable("m", 1, 0)

    def test_probe_states(self):
        m = MSHRTable("m", 2, 2)
        assert m.probe(1) is MSHRProbe.ABSENT
        m.allocate(req(0, 1), 0)
        assert m.probe(1) is MSHRProbe.MERGEABLE
        m.merge(req(1, 1), 1)
        assert m.probe(1) is MSHRProbe.ENTRY_FULL

    def test_allocate_full_table_fails(self):
        m = MSHRTable("m", 1, 4)
        assert m.allocate(req(0, 1), 0)
        assert not m.allocate(req(1, 2), 0)
        assert m.alloc_fails == 1

    def test_duplicate_allocate_raises(self):
        m = MSHRTable("m", 2, 4)
        m.allocate(req(0, 1), 0)
        with pytest.raises(SimulationError):
            m.allocate(req(1, 1), 0)

    def test_merge_absent_raises(self):
        m = MSHRTable("m", 2, 4)
        with pytest.raises(SimulationError):
            m.merge(req(0, 1), 0)

    def test_merge_full_entry_fails(self):
        m = MSHRTable("m", 2, 1)
        m.allocate(req(0, 1), 0)
        assert not m.merge(req(1, 1), 0)
        assert m.merge_fails == 1


class TestRelease:
    def test_release_returns_all_merged(self):
        m = MSHRTable("m", 2, 4)
        m.allocate(req(0, 7), 0)
        m.merge(req(1, 7), 1)
        m.merge(req(2, 7), 2)
        entry = m.release(7, 10)
        assert [r.rid for r in entry.requests] == [0, 1, 2]
        assert m.probe(7) is MSHRProbe.ABSENT
        assert m.releases == 1

    def test_release_absent_raises(self):
        m = MSHRTable("m", 2, 4)
        with pytest.raises(SimulationError):
            m.release(9, 0)

    def test_store_taints_entry(self):
        m = MSHRTable("m", 2, 4)
        m.allocate(req(0, 7), 0)
        m.merge(req(1, 7, AccessKind.STORE), 1)
        assert m.release(7, 2).has_store

    def test_load_only_entry_not_tainted(self):
        m = MSHRTable("m", 2, 4)
        m.allocate(req(0, 7), 0)
        assert not m.release(7, 1).has_store


class TestStatistics:
    def test_full_fraction(self):
        m = MSHRTable("m", 1, 4)
        m.allocate(req(0, 1), 10)  # busy AND full from 10
        m.release(1, 30)
        m.finalize(50)
        assert m.busy_cycles() == 20
        assert m.full_cycles() == 20
        assert m.full_fraction() == pytest.approx(1.0)

    def test_partial_full_fraction(self):
        m = MSHRTable("m", 2, 4)
        m.allocate(req(0, 1), 0)   # busy from 0
        m.allocate(req(1, 2), 10)  # full from 10
        m.release(1, 20)           # not full from 20
        m.release(2, 40)           # idle from 40
        m.finalize(40)
        assert m.busy_cycles() == 40
        assert m.full_cycles() == 10
        assert m.full_fraction() == pytest.approx(0.25)
