"""Unit tests for repro.utils.stats accumulators."""

import pytest

from repro.utils.stats import Accumulator, IntervalTracker, RatioStat


class TestAccumulator:
    def test_empty_mean_is_zero(self):
        acc = Accumulator("x")
        assert acc.mean == 0.0
        assert acc.count == 0

    def test_add_updates_all_fields(self):
        acc = Accumulator("x")
        acc.add(10.0)
        acc.add(20.0)
        assert acc.total == 30.0
        assert acc.count == 2
        assert acc.mean == 15.0
        assert acc.minimum == 10.0
        assert acc.maximum == 20.0

    def test_weighted_add(self):
        acc = Accumulator("x")
        acc.add(5.0, weight=4)
        assert acc.count == 4
        assert acc.total == 20.0
        assert acc.mean == 5.0

    def test_merge(self):
        a = Accumulator("a")
        b = Accumulator("b")
        a.add(1.0)
        b.add(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.mean == 2.0
        assert a.minimum == 1.0
        assert a.maximum == 3.0

    def test_zero_weight_add_is_a_full_no_op(self):
        """weight=0 must not move min/max (or anything else): an unobserved
        value would corrupt the extrema while leaving the mean untouched."""
        acc = Accumulator("x")
        acc.add(10.0)
        acc.add(-500.0, weight=0)
        acc.add(500.0, weight=0)
        assert acc.minimum == 10.0
        assert acc.maximum == 10.0
        assert acc.total == 10.0
        assert acc.count == 1

    def test_zero_weight_add_on_empty_accumulator(self):
        acc = Accumulator("x")
        acc.add(42.0, weight=0)
        assert acc.count == 0
        assert acc.minimum == float("inf")
        assert acc.maximum == float("-inf")

    def test_merge_empty_into_populated_keeps_extrema(self):
        """An empty accumulator's inf/-inf identities must not leak."""
        a = Accumulator("a")
        a.add(3.0)
        a.add(7.0)
        a.merge(Accumulator("empty"))
        assert a.minimum == 3.0
        assert a.maximum == 7.0
        assert a.count == 2

    def test_merge_populated_into_empty_adopts_extrema(self):
        a = Accumulator("empty")
        b = Accumulator("b")
        b.add(3.0)
        b.add(7.0)
        a.merge(b)
        assert a.minimum == 3.0
        assert a.maximum == 7.0
        assert a.mean == 5.0


class TestRatioStat:
    def test_empty_ratio_is_zero(self):
        assert RatioStat("r").ratio == 0.0

    def test_hit_and_miss(self):
        r = RatioStat("r")
        r.hit(3)
        r.miss(1)
        assert r.numerator == 3
        assert r.denominator == 4
        assert r.ratio == pytest.approx(0.75)

    def test_merge(self):
        a = RatioStat("a")
        b = RatioStat("b")
        a.hit()
        b.miss()
        a.merge(b)
        assert a.ratio == pytest.approx(0.5)


class TestIntervalTracker:
    def test_simple_interval(self):
        t = IntervalTracker("t")
        t.update(10, True)
        t.update(25, False)
        assert t.total() == 15

    def test_open_interval_counted_with_now(self):
        t = IntervalTracker("t")
        t.update(10, True)
        assert t.total(now=30) == 20
        assert t.active

    def test_finalize_closes_open_interval(self):
        t = IntervalTracker("t")
        t.update(5, True)
        t.finalize(12)
        assert t.total() == 7
        assert not t.active

    def test_redundant_updates_are_harmless(self):
        t = IntervalTracker("t")
        t.update(0, True)
        t.update(3, True)
        t.update(8, True)
        t.update(10, False)
        t.update(11, False)
        assert t.total() == 10

    def test_multiple_intervals_accumulate(self):
        t = IntervalTracker("t")
        t.update(0, True)
        t.update(4, False)
        t.update(10, True)
        t.update(13, False)
        assert t.total() == 7

    def test_zero_length_interval(self):
        t = IntervalTracker("t")
        t.update(5, True)
        t.update(5, False)
        assert t.total() == 0

    def test_falling_edge_without_open_interval_is_a_no_op(self):
        """A redundant falling edge (condition already false) must leave
        the tracker untouched — the contract the queues' edge-guarded
        update calls rely on."""
        t = IntervalTracker("t")
        t.update(5, False)
        t.update(9, False)
        assert t.total() == 0
        assert not t.active
        t.update(10, True)
        t.update(20, False)
        t.update(25, False)
        assert t.total() == 10


class TestHistogram:
    def test_empty(self):
        from repro.utils.stats import Histogram

        h = Histogram("h")
        assert h.mean == 0.0
        assert h.percentile(0.5) == 0.0

    def test_mean_exact(self):
        from repro.utils.stats import Histogram

        h = Histogram("h", bucket_width=4)
        for v in (0, 10, 20):
            h.add(v)
        assert h.mean == pytest.approx(10.0)
        assert h.count == 3

    def test_percentiles_ordered(self):
        from repro.utils.stats import Histogram

        h = Histogram("h", bucket_width=2)
        for v in range(100):
            h.add(v)
        p50 = h.percentile(0.5)
        p95 = h.percentile(0.95)
        p99 = h.percentile(0.99)
        assert p50 <= p95 <= p99
        assert abs(p50 - 50) <= 4
        assert abs(p95 - 95) <= 4

    def test_percentile_bounds_validated(self):
        from repro.utils.stats import Histogram

        h = Histogram("h")
        with pytest.raises(ValueError):
            h.percentile(1.5)
        with pytest.raises(ValueError):
            h.add(-1)
        with pytest.raises(ValueError):
            Histogram("h", bucket_width=0)

    def test_merge(self):
        from repro.utils.stats import Histogram

        a, b = Histogram("a"), Histogram("b")
        a.add(10)
        b.add(30)
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(20.0)

    def test_merge_width_mismatch(self):
        from repro.utils.stats import Histogram

        with pytest.raises(ValueError):
            Histogram("a", 4).merge(Histogram("b", 8))

    def test_tail_heavier_than_median(self):
        from repro.utils.stats import Histogram

        h = Histogram("h", bucket_width=8)
        for _ in range(95):
            h.add(100)
        for _ in range(5):
            h.add(1000)
        assert h.percentile(0.5) < 120
        assert h.percentile(0.99) > 900
