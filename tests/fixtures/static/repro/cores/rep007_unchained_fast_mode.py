"""Fixture: set_fast_mode override that never chains to super() (REP007)."""

from repro.sim.component import Component


class UnchainedFastMode(Component):
    def __init__(self):
        self._fast = False

    def set_fast_mode(self, enabled):
        self._fast = enabled  # swallows the switch; super() never called
