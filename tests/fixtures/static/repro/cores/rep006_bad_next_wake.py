"""Fixture: next_wake contract violations (REP006)."""

from repro.sim.component import Component


class BadWakeForms(Component):
    """Returns forms the engine's fast-forward cannot consume."""

    def next_wake(self, now):
        if now > 100:
            return "soon"  # string horizon
        if now > 50:
            return 1.5  # float constant
        if now > 25:
            return now > 10  # boolean expression
        return now / 2  # true division -> float


class BadWakeSignature(Component):
    def next_wake(self, now, hint):  # extra required parameter
        return now
