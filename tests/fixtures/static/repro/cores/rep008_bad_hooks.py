"""Fixture: inspect_*/sample_* hook signature drift (REP008).

Uses an intermediate subclass so the checker's transitive base-class
resolution is exercised too: ``BadHooks`` reaches Component only through
``IntermediateComponent``.
"""

from repro.sim.component import Component


class IntermediateComponent(Component):
    """Conforming middle layer."""


class BadHooks(IntermediateComponent):
    def inspect_queues(self, deep):  # extra required parameter
        return ()

    def sample_counters(self, now, window):  # base takes only self
        return ()

    def step(self):  # dropped the cycle argument
        return None
