"""Fixture: order-sensitive float reduction in a hot-path package (REP011).

Lives under ``repro/cache/`` so the hot-package scoping applies.
"""


def occupancy(latencies):
    unique = {float(latency) for latency in latencies}
    total = sum(unique)  # accumulation order is arbitrary
    mean = sum(x * 0.5 for x in unique)  # generator driven by a set
    return total, mean
