"""Fixture: upward import through the architecture tower (REP012)."""

from repro.cli import main  # cache (component layer) -> cli (entry point)


def run():
    return main
