"""Fixture: id()-keyed bookkeeping (REP010)."""


def track(requests):
    seen = {}
    order = []
    for request in requests:
        seen[id(request)] = request  # address-keyed store
        if id(request) not in seen:  # address-keyed membership
            order.append(request)
    alive = set()
    alive.add(id(requests))  # address into a set
    return sorted(order, key=id), seen, alive  # address sort key
