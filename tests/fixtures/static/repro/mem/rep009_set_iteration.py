"""Fixture: unordered iteration feeding output (REP009)."""


def report(banks):
    pending = {bank.name for bank in banks}
    lines = []
    for name in pending:  # arbitrary order reaches the report
        lines.append(name)
    totals = [len(name) for name in {"a", "b", "c"}]
    return lines, totals


def fine(banks):
    pending = {bank.name for bank in banks}
    return [name for name in sorted(pending)]  # sorted(): deterministic
