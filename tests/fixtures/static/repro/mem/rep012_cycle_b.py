"""Fixture: the other half of a module-level import cycle (REP012)."""

from repro.mem.rep012_cycle_a import alpha


def beta():
    return alpha
