"""Fixture: one half of a module-level import cycle (REP012)."""

from repro.mem.rep012_cycle_b import beta


def alpha():
    return beta
