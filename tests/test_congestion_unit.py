"""Direct unit tests for the congestion report (no heavy simulation)."""

import pytest

from repro.core.congestion import CongestionReport
from repro.core.metrics import QueueMetrics, RunMetrics


def metrics(name, l2_full, dram_full, respq_full=0.0):
    calm = QueueMetrics(0.0, 0.0, 0, 0)
    return RunMetrics(
        benchmark=name, cycles=1000, instructions=500, ipc=0.5,
        l1_hit_rate=0.1, l1_avg_miss_latency=400.0,
        l1_p50_miss_latency=380.0, l1_p95_miss_latency=700.0,
        l1_miss_count=100, l1_mshr_stall_cycles=0,
        l1_missq=QueueMetrics(0.3, 0.5, 10, 100),
        req_xbar_utilization=0.2, resp_xbar_utilization=0.4,
        resp_xbar_blocked_cycles=0,
        l2_hit_rate=0.5,
        l2_accessq=QueueMetrics(l2_full, 0.6, 5, 100),
        l2_missq=calm,
        l2_respq=QueueMetrics(respq_full, 0.5, 0, 50),
        l2_mshr_full_fraction=0.1, l2_reservation_fails=0, l2_writebacks=0,
        dram_schedq=QueueMetrics(dram_full, 0.4, 3, 60),
        dram_row_hit_rate=0.3, dram_bus_utilization=0.5,
        dram_reads=60, dram_writes=5,
        mem_pipeline_stall_cycles=100, no_ready_warp_fraction=0.6,
    )


@pytest.fixture
def report():
    return CongestionReport(runs={
        "a": metrics("a", l2_full=0.40, dram_full=0.30, respq_full=0.5),
        "b": metrics("b", l2_full=0.52, dram_full=0.48, respq_full=0.1),
    })


class TestAverages:
    def test_headline_averages(self, report):
        assert report.avg_l2_access_queue_full == pytest.approx(0.46)
        assert report.avg_dram_queue_full == pytest.approx(0.39)

    def test_other_queue_averages(self, report):
        assert report.avg_l1_miss_queue_full == pytest.approx(0.3)
        assert report.avg_l2_miss_queue_full == pytest.approx(0.0)
        assert report.avg_l2_response_queue_full == pytest.approx(0.3)


class TestTable:
    def test_per_benchmark_rows_and_average(self, report):
        table = report.to_table()
        assert "a" in table and "b" in table
        assert "average" in table
        assert "46%" in table  # the averaged L2 column
        assert "39%" in table  # the averaged DRAM column
