"""Negative tests: the sanitizer must catch deliberately injected violations.

Each test builds the smallest structure that violates one invariant —
a dropped request, a duplicated request, a leaked MSHR entry, a wedged
queue — and asserts the sanitizer raises :class:`SanitizerError` naming
the right invariant.  The invariant predicates themselves are also
exercised directly against hand-built structures.
"""

import pytest

from repro.analysis import Sanitizer
from repro.analysis.invariants import (
    mshr_violations,
    queue_bound_violations,
    timestamp_violations,
)
from repro.cache.mshr import MSHRTable
from repro.errors import ReproError, SanitizerError
from repro.mem.queue import StatQueue
from repro.mem.request import AccessKind, RequestFactory
from repro.sim.component import Component
from repro.sim.engine import Simulator


class Harness(Component):
    """A component exposing whatever containers a test hands it."""

    name = "harness"

    def __init__(self, queues=(), mshrs=(), inflight=()):
        self.queues = list(queues)
        self.mshrs = list(mshrs)
        self.inflight = list(inflight)

    def step(self, now):
        pass

    def inspect_queues(self):
        return self.queues

    def inspect_mshrs(self):
        return self.mshrs

    def inspect_inflight(self):
        return self.inflight


def make_rig(**containers):
    """A real Simulator holding one Harness, with a sanitizer attached."""
    sim = Simulator()
    harness = sim.add(Harness(**containers))
    factory = RequestFactory()
    sanitizer = Sanitizer(sim, factory, interval=1)
    sim.attach_observer(sanitizer)
    return sim, harness, factory, sanitizer


def make_request(factory, line=0x10, kind=AccessKind.LOAD):
    return factory.make(kind, line, sm_id=0, warp_id=0, now=0)


class TestRequestConservation:
    def test_dropped_request_detected(self):
        """A created request found in no container was silently dropped."""
        sim, harness, factory, _ = make_rig()
        make_request(factory)  # never placed anywhere
        with pytest.raises(SanitizerError, match="silently dropped"):
            sim.step()

    def test_request_in_queue_is_conserved(self):
        queue = StatQueue("q", capacity=4)
        sim, harness, factory, _ = make_rig(queues=[queue])
        queue.push(make_request(factory), now=0)
        sim.step()  # no raise: the request is accounted for

    def test_request_in_mshr_is_conserved(self):
        mshr = MSHRTable("m", entries=4, max_merge=4)
        sim, harness, factory, _ = make_rig(mshrs=[mshr])
        mshr.allocate(make_request(factory), now=0)
        sim.step()

    def test_retired_request_may_leave(self):
        sim, harness, factory, sanitizer = make_rig()
        request = make_request(factory)
        request.retired = True
        sim.step()
        assert sanitizer.in_flight == 0
        assert sanitizer.stats()["requests_retired"] == 1

    def test_duplicated_request_detected(self):
        """One request in two transit containers at once."""
        q1, q2 = StatQueue("q1", 4), StatQueue("q2", 4)
        sim, harness, factory, _ = make_rig(queues=[q1, q2])
        request = make_request(factory)
        q1.push(request, now=0)
        q2.push(request, now=0)
        with pytest.raises(SanitizerError, match="duplicated across transit"):
            sim.step()

    def test_retired_request_still_in_transit_detected(self):
        queue = StatQueue("q", 4)
        sim, harness, factory, _ = make_rig(queues=[queue])
        request = make_request(factory)
        queue.push(request, now=0)
        request.retired = True
        with pytest.raises(SanitizerError, match="already retired"):
            sim.step()

    def test_mshr_residence_plus_transit_is_legal(self):
        """An MSHR leader travelling downstream is not a duplicate."""
        queue = StatQueue("q", 4)
        mshr = MSHRTable("m", entries=4, max_merge=4)
        sim, harness, factory, _ = make_rig(queues=[queue], mshrs=[mshr])
        request = make_request(factory)
        mshr.allocate(request, now=0)
        queue.push(request, now=0)
        sim.step()  # no raise

    def test_rid_reuse_detected(self):
        _, _, factory, sanitizer = make_rig()
        request = make_request(factory)
        with pytest.raises(SanitizerError, match="allocated twice"):
            sanitizer.on_create(request)

    def test_unretired_request_at_finalize_detected(self):
        sim, harness, factory, _ = make_rig()
        queue = StatQueue("q", 4)
        harness.queues.append(queue)
        queue.push(make_request(factory), now=0)
        with pytest.raises(SanitizerError, match="never retired"):
            sim.finalize()


class TestMSHRLeak:
    def test_leaked_entry_detected(self):
        """All merged requests retired but the entry was never released."""
        mshr = MSHRTable("m", entries=4, max_merge=4)
        sim, harness, factory, _ = make_rig(mshrs=[mshr])
        request = make_request(factory)
        mshr.allocate(request, now=0)
        request.retired = True
        with pytest.raises(SanitizerError, match="leaked entry"):
            sim.step()

    def test_live_entry_is_not_a_leak(self):
        mshr = MSHRTable("m", entries=4, max_merge=4)
        request = make_request(RequestFactory())
        mshr.allocate(request, now=0)
        assert mshr_violations(mshr) == []


class TestDeadlockDetection:
    def test_wedged_queue_detected(self):
        queue = StatQueue("q", 4)
        sim = Simulator()
        sim.add(Harness(queues=[queue]))
        factory = RequestFactory()
        sanitizer = Sanitizer(sim, factory, interval=1, deadlock_cycles=10)
        sim.attach_observer(sanitizer)
        queue.push(make_request(factory), now=0)
        with pytest.raises(SanitizerError, match="no forward progress"):
            for _ in range(20):
                sim.step()

    def test_progress_resets_the_clock(self):
        queue = StatQueue("q", 4)
        sim = Simulator()
        sim.add(Harness(queues=[queue]))
        factory = RequestFactory()
        sanitizer = Sanitizer(sim, factory, interval=1, deadlock_cycles=10)
        sim.attach_observer(sanitizer)
        queue.push(make_request(factory), now=0)
        for step in range(30):
            # A pop+push every 5 cycles is observable progress.
            if step % 5 == 0:
                queue.push(queue.pop(now=step), now=step)
            sim.step()

    def test_idle_system_never_deadlocks(self):
        sim = Simulator()
        sim.add(Harness())
        sanitizer = Sanitizer(sim, RequestFactory(), interval=1,
                              deadlock_cycles=2)
        sim.attach_observer(sanitizer)
        for _ in range(50):
            sim.step()


class TestConfigurationAndInterval:
    def test_bad_interval_rejected(self):
        with pytest.raises(SanitizerError):
            Sanitizer(Simulator(), interval=0)

    def test_bad_deadlock_cycles_rejected(self):
        with pytest.raises(SanitizerError):
            Sanitizer(Simulator(), deadlock_cycles=0)

    def test_interval_skips_intermediate_cycles(self):
        sim = Simulator()
        sim.add(Harness())
        sanitizer = Sanitizer(sim, interval=8)
        sim.attach_observer(sanitizer)
        for _ in range(16):
            sim.step()
        assert sanitizer.checks_run == 2

    def test_violation_is_a_repro_error(self):
        sim, harness, factory, _ = make_rig()
        make_request(factory)
        with pytest.raises(ReproError):
            sim.step()


class TestInvariantPredicates:
    def test_queue_over_capacity(self):
        queue = StatQueue("q", 2)
        for i in range(2):
            queue.push(object(), now=0)
        queue._items.append(object())  # bypass the guard
        problems = queue_bound_violations([queue])
        assert any("over its capacity" in p for p in problems)

    def test_queue_accounting_mismatch(self):
        queue = StatQueue("q", 4)
        queue.push(object(), now=0)
        queue.pushes += 1  # tamper with the counter
        problems = queue_bound_violations([queue])
        assert any("accounting broken" in p for p in problems)

    def test_clean_queue_passes(self):
        queue = StatQueue("q", 4)
        queue.push(object(), now=0)
        queue.pop(now=1)
        assert queue_bound_violations([queue]) == []

    def test_future_timestamp(self):
        request = make_request(RequestFactory())
        request.stamp("l1_miss", 100)
        problems = timestamp_violations(request, now=50)
        assert any("outside [0, 50]" in p for p in problems)

    def test_decreasing_timestamps(self):
        request = make_request(RequestFactory())
        request.stamp("l1_miss", 40)
        request.stamp("l2_in", 30)
        problems = timestamp_violations(request, now=100)
        assert any("precedes earlier hop" in p for p in problems)

    def test_monotone_timestamps_pass(self):
        request = make_request(RequestFactory())
        request.stamp("l1_miss", 10)
        request.stamp("l2_in", 12)
        request.stamp("l2_out", 12)
        assert timestamp_violations(request, now=100) == []

    def test_mshr_accounting_mismatch(self):
        mshr = MSHRTable("m", entries=4, max_merge=4)
        mshr.allocate(make_request(RequestFactory()), now=0)
        mshr.allocations += 1  # tamper
        problems = mshr_violations(mshr)
        assert any("accounting broken" in p for p in problems)

    def test_mshr_entry_without_requests(self):
        mshr = MSHRTable("m", entries=4, max_merge=4)
        mshr.allocate(make_request(RequestFactory()), now=0)
        next(iter(mshr.entries())).requests.clear()
        problems = mshr_violations(mshr)
        assert any("has no requests" in p for p in problems)

    def test_mshr_merge_bound(self):
        mshr = MSHRTable("m", entries=4, max_merge=1)
        factory = RequestFactory()
        mshr.allocate(make_request(factory), now=0)
        next(iter(mshr.entries())).requests.append(make_request(factory))
        problems = mshr_violations(mshr)
        assert any("over max_merge" in p for p in problems)

    def test_mshr_line_mismatch(self):
        mshr = MSHRTable("m", entries=4, max_merge=4)
        factory = RequestFactory()
        mshr.allocate(make_request(factory, line=0x10), now=0)
        stray = make_request(factory, line=0x99)
        next(iter(mshr.entries())).requests.append(stray)
        problems = mshr_violations(mshr)
        assert any("filed under entry" in p for p in problems)
