"""Unit and property tests for DelayPipe."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.mem.pipe import DelayPipe


class TestDelayPipe:
    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            DelayPipe("p", -1)

    def test_item_not_ready_before_latency(self):
        pipe = DelayPipe("p", 5)
        pipe.insert("a", now=10)
        assert not pipe.ready(14)
        assert pipe.ready(15)

    def test_zero_latency_ready_same_cycle(self):
        pipe = DelayPipe("p", 0)
        pipe.insert("a", now=3)
        assert pipe.ready(3)

    def test_extra_delay(self):
        pipe = DelayPipe("p", 2)
        pipe.insert("a", now=0, extra_delay=7)
        assert not pipe.ready(8)
        assert pipe.ready(9)

    def test_insert_at_absolute(self):
        pipe = DelayPipe("p", 100)
        pipe.insert_at("a", ready_cycle=12)
        assert pipe.ready(12)

    def test_fifo_among_same_cycle(self):
        pipe = DelayPipe("p", 1)
        pipe.insert("first", now=0)
        pipe.insert("second", now=0)
        assert pipe.drain_ready(1) == ["first", "second"]

    def test_drain_only_ready(self):
        pipe = DelayPipe("p", 0)
        pipe.insert_at("early", 5)
        pipe.insert_at("late", 9)
        assert pipe.drain_ready(5) == ["early"]
        assert len(pipe) == 1

    def test_peek_and_pop(self):
        pipe = DelayPipe("p", 0)
        pipe.insert("x", now=0)
        assert pipe.peek() == "x"
        assert pipe.pop() == "x"
        assert pipe.empty


@given(
    st.lists(st.tuples(st.integers(0, 50), st.integers(0, 30)), max_size=60)
)
def test_items_emerge_in_ready_order(inserts):
    """drain over time yields items sorted by their ready cycle."""
    pipe = DelayPipe("p", 3)
    expected = []
    for i, (now, extra) in enumerate(inserts):
        pipe.insert((i, now + 3 + extra), now=now, extra_delay=extra)
        expected.append(now + 3 + extra)
    out = []
    horizon = max(expected, default=0) + 1
    for cycle in range(horizon + 1):
        for item, ready in pipe.drain_ready(cycle):
            assert ready <= cycle
            out.append(ready)
    assert len(out) == len(inserts)
    assert out == sorted(out)
