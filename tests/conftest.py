"""Shared fixtures.

Every test gets a private result-cache directory so no test reads or
writes ``~/.cache/repro`` (and cached results never leak between tests).
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-cache"))
