"""Unit and property tests for the instrumented finite queue."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError, SimulationError
from repro.mem.queue import StatQueue


class TestStatQueueBasics:
    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            StatQueue("q", 0)

    def test_fifo_order(self):
        q = StatQueue("q", 4)
        for i in range(3):
            assert q.push(i, now=i)
        assert [q.pop(now=10) for _ in range(3)] == [0, 1, 2]

    def test_push_refused_when_full_and_counted(self):
        q = StatQueue("q", 2)
        assert q.push("a", 0) and q.push("b", 0)
        assert not q.push("c", 0)
        assert q.rejections == 1
        assert q.pushes == 2

    def test_pop_empty_raises(self):
        q = StatQueue("q", 1)
        with pytest.raises(SimulationError):
            q.pop(0)

    def test_peek_does_not_remove(self):
        q = StatQueue("q", 2)
        q.push("a", 0)
        assert q.peek() == "a"
        assert len(q) == 1

    def test_remove_from_middle(self):
        q = StatQueue("q", 4)
        for x in "abc":
            q.push(x, 0)
        q.remove("b", 1)
        assert list(q) == ["a", "c"]
        assert q.pops == 1

    def test_remove_absent_raises(self):
        q = StatQueue("q", 4)
        q.push("a", 0)
        with pytest.raises(SimulationError):
            q.remove("z", 1)


class TestStatQueueInstrumentation:
    def test_full_fraction_simple(self):
        q = StatQueue("q", 1)
        q.push("a", 10)  # becomes busy AND full at 10
        q.pop(20)  # empty at 20
        q.finalize(30)
        assert q.busy_cycles() == 10
        assert q.full_cycles() == 10
        assert q.full_fraction() == pytest.approx(1.0)

    def test_partial_full_fraction(self):
        q = StatQueue("q", 2)
        q.push("a", 0)      # busy from 0
        q.push("b", 6)      # full from 6
        q.pop(10)           # not full from 10
        q.pop(16)           # empty at 16
        q.finalize(16)
        assert q.busy_cycles() == 16
        assert q.full_cycles() == 4
        assert q.full_fraction() == pytest.approx(0.25)

    def test_never_used_queue_reports_zero(self):
        q = StatQueue("q", 2)
        q.finalize(100)
        assert q.full_fraction() == 0.0
        assert q.busy_cycles() == 0

    def test_never_full_queue_full_tracker_untouched(self):
        """Lock-in: a queue that never reaches capacity must report zero
        full time — pop/remove must not open (or close) a phantom full
        interval via a redundant falling edge."""
        q = StatQueue("q", 4)
        q.push("a", 0)
        q.push("b", 1)
        q.pop(5)
        q.push("c", 7)
        q.remove("b", 9)
        q.pop(12)
        assert not q._full_time.active
        assert q._full_time.total(now=12) == 0
        q.finalize(20)
        assert q.full_cycles() == 0
        assert q.full_fraction() == 0.0

    def test_full_interval_closes_on_first_pop_only(self):
        """The falling edge fires exactly when the queue leaves the full
        state; the subsequent pop (already non-full) changes nothing."""
        q = StatQueue("q", 2)
        q.push("a", 0)
        q.push("b", 3)   # full from 3
        q.pop(10)        # leaves full at 10
        assert not q._full_time.active
        q.pop(15)        # redundant: already non-full
        q.finalize(15)
        assert q.full_cycles() == 7

    def test_mean_occupancy_at_push(self):
        q = StatQueue("q", 8)
        q.push("a", 0)  # occupancy 1 after push
        q.push("b", 0)  # occupancy 2
        assert q.mean_occupancy_at_push == pytest.approx(1.5)


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["push", "pop"]), st.integers(0, 5)),
        max_size=200,
    )
)
def test_queue_invariants_under_random_ops(ops):
    """Occupancy stays within [0, capacity]; counters are consistent."""
    q = StatQueue("q", 3)
    now = 0
    live = 0
    for op, gap in ops:
        now += gap
        if op == "push":
            if q.push(object(), now):
                live += 1
        elif len(q):
            q.pop(now)
            live -= 1
        assert 0 <= len(q) <= 3
        assert len(q) == live
    q.finalize(now)
    assert q.pushes == q.pops + len(q)
    assert q.full_cycles() <= q.busy_cycles()
    assert 0.0 <= q.full_fraction() <= 1.0
