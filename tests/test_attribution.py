"""Cycle accounting & blame attribution acceptance tests.

The attribution subsystem makes three promises the profiling story rests
on:

* **conservation** — the four accounting classes (issue / issue_starved /
  no_ready_warp / drained) partition each SM's cycles *exactly*, on every
  benchmark, under both warp schedulers, with and without magic memory,
  and byte-identically under fast-forward;
* **zero perturbation** — attaching the probe (or requesting attribution
  through ``run_kernel``) never changes the simulated machine: metrics
  modulo ``extras`` are byte-identical with it on or off;
* **useful blame** — on a memory-intensive benchmark at the paper's
  small config, the majority of memory-pipeline stall cycles land on
  downstream congestion (l2/dram/icnt), echoing the Section III story,
  while magic memory (no L2/DRAM components at all) degrades cleanly to
  ``mem_latency``.
"""

import dataclasses
import json

import pytest

from repro.core.metrics import STALL_CAUSE_KEYS, run_kernel
from repro.core.profile import config_for_label, profile_diff, profile_kernel
from repro.core.report import render_profile, render_profile_diff
from repro.errors import UsageError
from repro.gpu import GPU
from repro.sim.config import small_gpu, tiny_gpu
from repro.telemetry import BLAME_STAGES, AttributionProbe
from repro.workloads.suite import BENCHMARKS, get_benchmark

SCALE = 0.2


def _gto(config):
    return dataclasses.replace(
        config, core=dataclasses.replace(config.core, scheduler="gto"))


def _run(config, name, **kwargs):
    return run_kernel(
        config, get_benchmark(name, SCALE), attribution=True, **kwargs)


def _assert_conserved(metrics):
    attribution = metrics.extras["attribution"]
    assert attribution["conserved"] is True
    classes = attribution["classes"]
    assert set(classes) == {
        "issue", "issue_starved", "no_ready_warp", "drained"}
    assert all(count >= 0 for count in classes.values())
    assert sum(classes.values()) == attribution["sm_cycles"]
    # The RunMetrics mirror agrees with the probe.
    assert metrics.sm_cycles == attribution["sm_cycles"]
    assert metrics.issue_cycles == classes["issue"]
    assert metrics.issue_starved_cycles == classes["issue_starved"]
    assert metrics.no_ready_warp_cycles == classes["no_ready_warp"]
    assert metrics.drained_cycles == classes["drained"]


class TestConservation:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    @pytest.mark.parametrize("scheduler", ("lrr", "gto"))
    def test_classes_partition_cycles(self, name, scheduler):
        config = tiny_gpu()
        if scheduler == "gto":
            config = _gto(config)
        _assert_conserved(_run(config, name))

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    @pytest.mark.parametrize("scheduler", ("lrr", "gto"))
    def test_classes_partition_cycles_magic_memory(self, name, scheduler):
        config = tiny_gpu().with_magic_memory(200)
        if scheduler == "gto":
            config = _gto(config)
        _assert_conserved(_run(config, name))

    def test_conserved_under_fast_forward_byte_identically(self):
        fast = _run(tiny_gpu(), "leukocyte")
        naive = _run(tiny_gpu(), "leukocyte", fast_forward=False)
        _assert_conserved(fast)
        assert fast == naive

    def test_sanitizer_accepts_the_accounting(self):
        # The sanitizer's cycle_accounting_violations pass runs on the
        # same machine; a clean run proves the invariant epoch by epoch.
        metrics = _run(tiny_gpu(), "sc", sanitize=True, sanitize_interval=1)
        _assert_conserved(metrics)
        assert metrics.extras["sanitizer"]["checks_run"] > 0


class TestZeroPerturbation:
    @pytest.mark.parametrize("name", ("sc", "lbm", "leukocyte"))
    def test_metrics_byte_identical_modulo_extras(self, name):
        plain = run_kernel(tiny_gpu(), get_benchmark(name, SCALE))
        probed = _run(tiny_gpu(), name)
        assert "attribution" in probed.extras
        assert "attribution" not in plain.extras
        assert dataclasses.replace(probed, extras={}) == dataclasses.replace(
            plain, extras={})

    def test_disabled_by_default(self):
        metrics = run_kernel(tiny_gpu(), get_benchmark("nn", SCALE))
        assert "attribution" not in metrics.extras
        # ... but the accounting counters themselves are always on (they
        # are plain integers bumped in paths the SM takes anyway).
        assert metrics.sm_cycles > 0


class TestProbe:
    def _probed(self, name="nn", config=None, **kwargs):
        gpu = GPU(config or tiny_gpu(), get_benchmark(name, SCALE))
        probe = AttributionProbe.attach(gpu, **kwargs)
        gpu.run(max_cycles=500_000)
        return gpu, probe

    def test_windows_partition_the_run(self):
        gpu, probe = self._probed(window=100)
        windows = probe.windows
        assert len(windows) > 1
        assert windows[0].start == 0
        assert windows[-1].end == gpu.cycles
        for prev, cur in zip(windows, windows[1:]):
            assert cur.start == prev.end
            assert cur.index == prev.index + 1

    def test_window_deltas_sum_to_totals(self):
        _gpu, probe = self._probed(window=100)
        totals = probe.class_totals()
        sm_cycles = totals.pop("cycles")
        assert sum(w.sm_cycles for w in probe.windows) == sm_cycles
        for name, total in totals.items():
            assert sum(w.classes.get(name, 0) for w in probe.windows) == total
        stall_totals = probe.stall_totals()
        for cause, total in stall_totals.items():
            assert sum(w.stalls.get(cause, 0) for w in probe.windows) == total

    def test_window_blame_partitions_window_stalls(self):
        _gpu, probe = self._probed(window=100)
        for w in probe.windows:
            assert sum(w.blame.values()) == sum(
                max(0, s) for s in w.stalls.values())
            assert set(w.blame) == set(BLAME_STAGES)
            assert all(0.0 <= v <= 1.0 for v in w.signals.values())

    def test_blame_totals_exact_despite_dropped_windows(self):
        _gpu, exact = self._probed(name="sc", window=50, max_windows=1024)
        _gpu, ringed = self._probed(name="sc", window=50, max_windows=2)
        assert ringed.dropped > 0
        assert len(ringed.windows) == 2
        assert ringed.blame_totals() == exact.blame_totals()
        assert ringed.class_totals() == exact.class_totals()

    def test_magic_memory_blames_latency(self):
        _gpu, probe = self._probed(
            name="sc", config=tiny_gpu().with_magic_memory(200))
        blame = probe.blame_totals()
        assert sum(blame.values()) > 0
        assert sum(blame.values()) == blame["mem_latency"]

    def test_parameter_validation(self):
        with pytest.raises(UsageError):
            AttributionProbe(None, window=0)
        with pytest.raises(UsageError):
            AttributionProbe(None, max_windows=0)
        with pytest.raises(UsageError):
            AttributionProbe(None, blame_threshold=0.0)
        with pytest.raises(UsageError):
            AttributionProbe(None, blame_threshold=1.5)

    def test_determinism(self):
        _gpu, a = self._probed(name="lbm", window=100)
        _gpu, b = self._probed(name="lbm", window=100)
        assert a.summary() == b.summary()


class TestStallCauseSurfacing:
    def test_stall_dict_zero_filled_with_stable_keys(self):
        metrics = run_kernel(tiny_gpu(), get_benchmark("leukocyte", SCALE))
        assert tuple(metrics.mem_stall_cycles_by_cause) == STALL_CAUSE_KEYS
        assert all(
            cycles >= 0
            for cycles in metrics.mem_stall_cycles_by_cause.values())

    def test_stalls_sum_to_pipeline_stall_cycles(self):
        metrics = run_kernel(tiny_gpu(), get_benchmark("sc", SCALE))
        assert (
            sum(metrics.mem_stall_cycles_by_cause.values())
            == metrics.mem_pipeline_stall_cycles)

    def test_export_columns_are_stable(self):
        from repro.core.export import metrics_to_csv, metrics_to_dict

        metrics = run_kernel(tiny_gpu(), get_benchmark("nn", SCALE))
        flat = metrics_to_dict(metrics)
        for cause in STALL_CAUSE_KEYS:
            column = f"mem_stall_{cause[len('stall_'):]}_cycles"
            assert column in flat
        header = metrics_to_csv([metrics]).splitlines()[0]
        assert "mem_stall_mshr_full_cycles" in header
        assert "mem_stall_missq_full_cycles" in header


class TestProfileDocuments:
    def _profile(self, label="baseline", name="sc"):
        return profile_kernel(
            config_for_label(tiny_gpu(), label), name,
            config_label=label, iteration_scale=SCALE)

    def test_profile_is_json_ready_and_conserved(self):
        profile = self._profile()
        round_tripped = json.loads(json.dumps(profile))
        assert round_tripped == profile
        assert profile["conserved"] is True
        assert sum(profile["classes"].values()) == profile["sm_cycles"]
        assert set(profile["blame"]) == set(BLAME_STAGES)

    def test_unknown_label_rejected(self):
        with pytest.raises(UsageError):
            config_for_label(tiny_gpu(), "turbo")

    def test_diff_requires_matching_run(self):
        a = self._profile()
        b = dict(a, seed=2)
        with pytest.raises(UsageError):
            profile_diff(a, b)

    def test_diff_explains_cycles_saved(self):
        a = self._profile("baseline")
        b = self._profile("l2")
        diff = profile_diff(a, b)
        assert diff["cycles_saved"] == a["cycles"] - b["cycles"]
        assert sum(diff["classes_reclaimed"].values()) == (
            diff["sm_cycles_saved"])
        assert diff["a"]["config"] == "baseline"
        assert diff["b"]["config"] == "l2"

    def test_renderers_accept_the_documents(self):
        a = self._profile("baseline")
        text = render_profile(a)
        assert "Cycle classes" in text
        assert "conserved=true" in text
        diff_text = render_profile_diff(profile_diff(a, self._profile("l2")))
        assert "speedup" in diff_text
        assert "reclaimed" in diff_text

    def test_compute_bound_profile_renders(self):
        profile = profile_kernel(
            tiny_gpu().with_magic_memory(0), "leukocyte",
            iteration_scale=SCALE)
        text = render_profile(profile)
        assert "Top-down cycle accounting" in text


@pytest.mark.slow
class TestPaperStory:
    def test_small_config_blames_downstream_congestion(self):
        """Acceptance: a memory-intensive benchmark at the paper's small
        config attributes the majority of its stall cycles to l2/dram."""
        profile = profile_kernel(
            small_gpu(), "sc", iteration_scale=SCALE)
        stall_total = sum(profile["stalls"].values())
        congested = sum(
            profile["blame"][stage] for stage in ("dram", "l2", "icnt"))
        assert stall_total > 0
        assert congested / stall_total > 0.5
