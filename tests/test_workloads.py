"""Workload-layer tests: patterns, synthetic specs, the paper suite."""

import random

import pytest

from repro.errors import WorkloadError
from repro.workloads.patterns import (
    coalesced_group,
    hot_cold,
    stream,
    strided,
    uniform_random,
)
from repro.workloads.program import KernelProgram
from repro.workloads.suite import BENCHMARKS, PAPER_SUITE, SPECS, get_benchmark
from repro.workloads.synthetic import SyntheticKernelSpec, build_kernel


class TestPatterns:
    def test_stream(self):
        assert list(stream(100, 5, 3)) == [105, 106, 107]

    def test_strided(self):
        assert list(strided(0, 0, 4, 3)) == [0, 4, 8]

    def test_uniform_random_in_range(self):
        rng = random.Random(1)
        lines = list(uniform_random(rng, 50, 10, 100))
        assert all(50 <= l < 60 for l in lines)

    def test_hot_cold_split(self):
        rng = random.Random(2)
        lines = list(hot_cold(rng, 0, hot_span=10, cold_span=100, p_hot=0.8,
                              count=500))
        hot = sum(1 for l in lines if l < 10)
        assert 0.7 < hot / 500 < 0.9

    def test_coalesced_group(self):
        assert coalesced_group(7, 1) == [7]
        assert coalesced_group(7, 3, spread=2) == [7, 9, 11]


class TestSpecValidation:
    def base(self, **kw):
        args = dict(name="k", pattern="stream", iterations=4,
                    compute_per_iter=2, loads_per_iter=1)
        args.update(kw)
        return SyntheticKernelSpec(**args)

    def test_valid_spec(self):
        self.base()

    @pytest.mark.parametrize("kw", [
        dict(pattern="zigzag"),
        dict(iterations=0),
        dict(loads_per_iter=0, stores_per_iter=0),
        dict(txns_per_load=0),
        dict(p_hot=1.5),
        dict(pattern="hot_cold", hot_lines=0),
        dict(working_set_lines=0),
    ])
    def test_invalid_specs(self, kw):
        with pytest.raises(WorkloadError):
            self.base(**kw)

    def test_scaled(self):
        spec = self.base(iterations=10)
        assert spec.scaled(0.5).iterations == 5
        assert spec.scaled(0.01).iterations == 1  # never below 1

    def test_instruction_accounting_helpers(self):
        spec = self.base(iterations=3, loads_per_iter=2, txns_per_load=2,
                         stores_per_iter=1)
        assert spec.memory_instructions_per_warp == 3 * 3
        assert spec.transactions_per_warp == 3 * (2 * 2 + 1)


class TestProgramGeneration:
    def trace(self, spec, sm=0, warp=0, seed=1):
        kernel = build_kernel(spec)
        return list(kernel.instantiate(sm, warp, seed))

    def test_stream_generates_expected_ops(self):
        spec = SyntheticKernelSpec(
            name="k", pattern="stream", iterations=2, compute_per_iter=3,
            loads_per_iter=2, txns_per_load=2, stores_per_iter=1)
        trace = self.trace(spec)
        kinds = [i[0] for i in trace]
        assert kinds == ["compute", "load", "load", "store"] * 2
        loads = [i for i in trace if i[0] == "load"]
        assert all(len(i[1]) == 2 for i in loads)

    def test_stream_lines_are_disjoint_across_warps(self):
        spec = SyntheticKernelSpec(
            name="k", pattern="stream", iterations=4, compute_per_iter=1,
            loads_per_iter=2)
        lines_a = {l for op, arg in self.trace(spec, warp=0) if op == "load"
                   for l in arg}
        lines_b = {l for op, arg in self.trace(spec, warp=1) if op == "load"
                   for l in arg}
        assert not lines_a & lines_b

    def test_shared_stream_wraps_working_set(self):
        spec = SyntheticKernelSpec(
            name="k", pattern="shared_stream", iterations=50,
            compute_per_iter=1, loads_per_iter=2, working_set_lines=64)
        lines = {l for op, arg in self.trace(spec) if op == "load" for l in arg}
        assert max(lines) < 64

    def test_random_within_working_set(self):
        spec = SyntheticKernelSpec(
            name="k", pattern="random", iterations=20, compute_per_iter=1,
            loads_per_iter=2, working_set_lines=128)
        lines = [l for op, arg in self.trace(spec) if op == "load" for l in arg]
        assert all(0 <= l < 128 for l in lines)

    def test_tile_reuse_revisits_lines(self):
        spec = SyntheticKernelSpec(
            name="k", pattern="tile_reuse", iterations=16, compute_per_iter=1,
            loads_per_iter=2, tile_lines=4, reuse_per_line=4)
        lines = [l for op, arg in self.trace(spec) if op == "load" for l in arg]
        assert len(set(lines)) < len(lines) / 2  # substantial reuse

    def test_wavefront_emits_membars(self):
        spec = SyntheticKernelSpec(
            name="k", pattern="wavefront", iterations=5, compute_per_iter=1,
            loads_per_iter=1, membar_every=1, working_set_lines=64)
        kinds = [i[0] for i in self.trace(spec)]
        assert kinds.count("membar") == 5

    def test_determinism_per_seed(self):
        spec = SPECS["cfd"]
        a = self.trace(spec, seed=7)
        b = self.trace(spec, seed=7)
        c = self.trace(spec, seed=8)
        assert a == b
        assert a != c

    def test_store_arena_does_not_collide_with_loads(self):
        spec = SyntheticKernelSpec(
            name="k", pattern="stream", iterations=8, compute_per_iter=1,
            loads_per_iter=2, stores_per_iter=2)
        trace = self.trace(spec, sm=7, warp=63)
        loads = {l for op, arg in trace if op == "load" for l in arg}
        stores = {l for op, arg in trace if op == "store" for l in arg}
        assert not loads & stores


class TestSuite:
    def test_suite_contains_papers_benchmarks(self):
        assert set(PAPER_SUITE) == {
            "cfd", "dwt2d", "leukocyte", "nn", "nw", "sc", "lbm", "ss"
        }
        assert set(BENCHMARKS) == set(PAPER_SUITE)

    def test_get_benchmark_scaling(self):
        full = get_benchmark("nn")
        assert isinstance(full, KernelProgram)
        half = get_benchmark("nn", 0.5)
        n_full = len(list(full.instantiate(0, 0, 1)))
        n_half = len(list(half.instantiate(0, 0, 1)))
        assert n_half < n_full

    def test_unknown_benchmark(self):
        with pytest.raises(WorkloadError):
            get_benchmark("fluidanimate")

    @pytest.mark.parametrize("name", PAPER_SUITE)
    def test_every_benchmark_generates_valid_traces(self, name):
        kernel = get_benchmark(name, 0.1)
        trace = list(kernel.instantiate(0, 0, 1))
        assert trace, name
        valid = {"compute", "load", "store", "membar"}
        assert all(i[0] in valid for i in trace)
