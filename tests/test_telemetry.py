"""Telemetry acceptance tests: windows, traces, determinism.

The telemetry subsystem promises three things the rest of the repo leans
on:

* **reconciliation** — windowed series are exact decompositions of the
  end-of-run aggregates (summing window deltas recovers the cumulative
  queue counters and instruction totals);
* **valid traces** — the Chrome trace is schema-valid JSON whose spans
  are non-negative and cover every hop each sampled request recorded;
* **determinism** — identical seeds give byte-identical traces and
  window series, and attaching instrumentation never perturbs the
  simulated machine.
"""

import json
import types

import pytest

from repro.core.metrics import run_kernel
from repro.errors import UsageError
from repro.gpu import GPU
from repro.sim.config import tiny_gpu
from repro.telemetry import RequestTracer, TimeSeriesProbe, hop_track
from repro.utils.ascii_plot import resample, sparkline
from repro.workloads.suite import get_benchmark

SCALE = 0.2


def _run_probed(name="nn", window=100, **kwargs):
    gpu = GPU(tiny_gpu(), get_benchmark(name, SCALE))
    probe = TimeSeriesProbe.attach(gpu, window=window, **kwargs)
    gpu.run(max_cycles=500_000)
    return gpu, probe


class TestWindowReconciliation:
    def test_windows_partition_the_run(self):
        gpu, probe = _run_probed()
        windows = probe.windows
        assert len(windows) > 1
        assert windows[0].start == 0
        assert windows[-1].end == gpu.cycles
        for prev, cur in zip(windows, windows[1:]):
            assert cur.start == prev.end
            assert cur.index == prev.index + 1

    def test_queue_cycles_reconcile_exactly(self):
        """Summed window deltas == end-of-run cumulative queue counters."""
        gpu, probe = _run_probed()
        families = {
            "l1_missq": [sm.l1.miss_queue for sm in gpu.sms],
            "l2_accessq": [l2.access_queue for l2 in gpu.l2_slices],
            "l2_missq": [l2.miss_queue for l2 in gpu.l2_slices],
            "l2_respq": [l2.response_queue for l2 in gpu.l2_slices],
            "dram_schedq": [d.sched_queue for d in gpu.dram_channels],
            "dram_returnq": [d.return_queue for d in gpu.dram_channels],
        }
        assert set(families) <= set(probe.queue_families)
        for family, queues in families.items():
            full, busy = probe.total_queue_cycles(family)
            assert full == sum(q.full_cycles() for q in queues), family
            assert busy == sum(q.busy_cycles() for q in queues), family

    def test_push_and_rejection_deltas_reconcile(self):
        gpu, probe = _run_probed()
        pushes = sum(
            w.queue_pushes["l2_accessq"] for w in probe.windows
        )
        assert pushes == sum(l2.access_queue.pushes for l2 in gpu.l2_slices)

    def test_ipc_windows_recover_instruction_total(self):
        gpu, probe = _run_probed()
        recovered = sum(w.ipc * w.length for w in probe.windows)
        assert recovered == pytest.approx(gpu.instructions)

    def test_run_kernel_timeline_matches_aggregate_metrics(self):
        """The windowed L2 congestion reconciles with Section III output."""
        metrics = run_kernel(
            tiny_gpu(), get_benchmark("nn", SCALE),
            timeline=True, timeline_window=100,
        )
        timeline = metrics.extras["timeline"]
        windows = timeline["windows"]
        assert windows, "timeline captured no windows"
        full = sum(w["queue_full_cycles"]["l2_accessq"] for w in windows)
        busy = sum(w["queue_busy_cycles"]["l2_accessq"] for w in windows)
        pooled = full / busy if busy else 0.0
        # full_fraction is a mean over instances; the pooled ratio agrees
        # within tolerance (exactly, on tiny's single partition).
        assert pooled == pytest.approx(
            metrics.l2_accessq.full_fraction, abs=0.05
        )
        ipc = sum(w["ipc"] * (w["end"] - w["start"]) for w in windows)
        assert ipc / metrics.cycles == pytest.approx(metrics.ipc)

    def test_bus_utilization_windows_average_to_aggregate(self):
        metrics = run_kernel(
            tiny_gpu(), get_benchmark("nn", SCALE),
            timeline=True, timeline_window=100,
        )
        windows = metrics.extras["timeline"]["windows"]
        busy = sum(
            w["dram_bus_utilization"] * (w["end"] - w["start"])
            for w in windows
        )
        assert busy / metrics.cycles == pytest.approx(
            metrics.dram_bus_utilization, abs=1e-9
        )


class TestRingBuffer:
    def test_oldest_windows_dropped_beyond_cap(self):
        gpu, probe = _run_probed(window=50, max_windows=3)
        assert len(probe.windows) == 3
        assert probe.dropped > 0
        assert probe.windows[-1].end == gpu.cycles
        # Retained windows are the most recent, still contiguous.
        indices = [w.index for w in probe.windows]
        assert indices == list(
            range(probe.dropped, probe.dropped + 3)
        )
        assert probe.summary()["dropped"] == probe.dropped

    def test_parameter_validation(self):
        gpu = GPU(tiny_gpu(), get_benchmark("nn", SCALE))
        with pytest.raises(UsageError):
            TimeSeriesProbe(gpu.sim, window=0)
        with pytest.raises(UsageError):
            TimeSeriesProbe(gpu.sim, max_windows=0)

    def test_series_accessor(self):
        _gpu, probe = _run_probed()
        points = probe.series("ipc")
        assert len(points) == len(probe.windows)
        per_family = probe.series("queue_full_fraction", "l2_accessq")
        assert len(per_family) == len(points)
        with pytest.raises(UsageError):
            probe.series("queue_full_fraction")  # family required
        with pytest.raises(UsageError):
            probe.series("no_such_series")


def _run_traced(name="nn", stride=1, **kwargs):
    gpu = GPU(tiny_gpu(), get_benchmark(name, SCALE))
    tracer = RequestTracer.attach(gpu, stride=stride, **kwargs)
    gpu.run(max_cycles=500_000)
    return gpu, tracer


class TestChromeTrace:
    def test_schema_valid_json(self):
        _gpu, tracer = _run_traced()
        trace = json.loads(tracer.to_json())
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        for event in trace["traceEvents"]:
            assert event["ph"] in {"X", "M"}
            assert event["pid"] == 0
            if event["ph"] == "X":
                assert event["ts"] >= 0
                assert event["dur"] >= 0
                assert "->" in event["name"] or event["dur"] == 0

    def test_spans_cover_every_recorded_hop(self):
        _gpu, tracer = _run_traced()
        trace = tracer.to_chrome_trace()
        spans_by_rid = {}
        for event in trace["traceEvents"]:
            if event["ph"] != "X":
                continue
            hops = spans_by_rid.setdefault(event["args"]["rid"], set())
            hops.add(event["args"]["begin_hop"])
            hops.add(event["args"]["end_hop"])
        assert spans_by_rid
        for request in tracer.requests:
            assert set(request.timestamps) == spans_by_rid[request.rid]

    def test_spans_are_monotone_per_request(self):
        _gpu, tracer = _run_traced()
        for request in tracer.requests:
            stamps = [cycle for _hop, cycle in request.hops()]
            assert stamps == sorted(stamps)

    def test_every_track_named(self):
        _gpu, tracer = _run_traced()
        trace = tracer.to_chrome_trace()
        named = {
            e["tid"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        used = {
            e["tid"] for e in trace["traceEvents"] if e["ph"] == "X"
        }
        assert used <= named

    def test_stride_sampling(self):
        _gpu, tracer = _run_traced(stride=4)
        assert tracer.created > 4
        assert tracer.sampled == (tracer.created + 3) // 4
        meta = tracer.to_chrome_trace()["otherData"]
        assert meta["stride"] == 4
        assert meta["requests_created"] == tracer.created

    def test_limit_caps_retention(self):
        _gpu, tracer = _run_traced(stride=1, limit=2)
        assert tracer.sampled == 2
        assert tracer.overflowed == tracer.created - 2

    def test_parameter_validation(self):
        with pytest.raises(UsageError):
            RequestTracer(stride=0)
        with pytest.raises(UsageError):
            RequestTracer(limit=0)

    def test_hop_summary_digest(self):
        _gpu, tracer = _run_traced()
        summary = tracer.hop_summary()
        assert summary
        for row in summary:
            assert "->" in row["hop"]
            assert row["count"] > 0
            assert 0 <= row["mean"]
            assert 0 <= row["p50"]


class TestHopTrack:
    def test_prefix_mapping(self):
        request = types.SimpleNamespace(sm_id=3, line=0)
        assert hop_track("icnt_req_in", request) == "icnt.request"
        assert hop_track("icnt_resp_out", request) == "icnt.response"
        assert hop_track("l1_miss", request) == "sm3.l1"
        assert hop_track("l2_probed", request) == "l2"
        assert hop_track("dram_act", request) == "dram"
        assert hop_track("mystery", request) == "other"

    def test_unattributed_l1(self):
        request = types.SimpleNamespace(sm_id=-1, line=0)
        assert hop_track("l1_access", request) == "l1"

    def test_partition_suffix_with_mapper(self):
        gpu = GPU(tiny_gpu(), get_benchmark("nn", SCALE))
        request = types.SimpleNamespace(sm_id=0, line=7)
        partition = gpu.mapper.partition(7)
        assert hop_track("l2_in", request, gpu.mapper) == f"l2_p{partition}"
        assert (
            hop_track("dram_in", request, gpu.mapper) == f"dram_p{partition}"
        )


class TestDeterminismAndTransparency:
    def test_trace_deterministic_across_identical_seeds(self):
        _gpu, first = _run_traced(stride=2)
        _gpu, second = _run_traced(stride=2)
        assert first.to_json() == second.to_json()

    def test_timeline_deterministic_across_identical_seeds(self):
        _gpu, first = _run_probed()
        _gpu, second = _run_probed()
        assert first.summary() == second.summary()

    def test_instrumentation_is_observationally_transparent(self):
        plain = GPU(tiny_gpu(), get_benchmark("nn", SCALE))
        plain.run(max_cycles=500_000)
        probed = GPU(tiny_gpu(), get_benchmark("nn", SCALE))
        TimeSeriesProbe.attach(probed, window=100)
        RequestTracer.attach(probed, stride=1)
        probed.run(max_cycles=500_000)
        assert probed.cycles == plain.cycles
        assert probed.instructions == plain.instructions


class TestSparklines:
    def test_resample_bucket_averages(self):
        assert resample([1.0, 3.0, 5.0, 7.0], 2) == [2.0, 6.0]
        assert resample([1.0, 2.0], 8) == [1.0, 2.0]
        with pytest.raises(UsageError):
            resample([1.0], 0)

    def test_sparkline_scales_min_to_max(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == " " and line[-1] == "@"

    def test_sparkline_flat_and_empty(self):
        assert sparkline([0.0, 0.0]) == "  "
        assert sparkline([2.0, 2.0]) != "  "  # non-zero flat stays visible
        with pytest.raises(UsageError):
            sparkline([])

    def test_sparkline_width_cap(self):
        assert len(sparkline(list(range(100)), width=10)) == 10
