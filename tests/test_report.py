"""Report-rendering tests (paper-value constants and formatting)."""

import pytest

from repro.core.latency_profile import (
    IDEAL_DRAM_LATENCY,
    IDEAL_L2_LATENCY,
    LatencyPoint,
    LatencyProfile,
)
from repro.core.metrics import run_kernel
from repro.core.report import (
    PAPER_AVG_GAINS,
    PAPER_DRAM_SCHEDQ_FULL,
    PAPER_L2_ACCESSQ_FULL,
    render_figure1,
)
from repro.sim.config import tiny_gpu
from repro.workloads.suite import get_benchmark


class TestPaperConstants:
    def test_section_iv_gains_as_published(self):
        assert PAPER_AVG_GAINS == {
            "l1": 0.04, "l2": 0.59, "dram": 0.11,
            "l1+l2": 0.69, "l2+dram": 0.76,
        }

    def test_section_iii_fractions_as_published(self):
        assert PAPER_L2_ACCESSQ_FULL == 0.46
        assert PAPER_DRAM_SCHEDQ_FULL == 0.39

    def test_section_ii_ideal_latencies_as_published(self):
        assert IDEAL_L2_LATENCY == 120
        assert IDEAL_DRAM_LATENCY == 220  # 120 + ~100 additional via L2


class TestFigureRendering:
    def make_profile(self, name="bench"):
        baseline = run_kernel(tiny_gpu(), get_benchmark("leukocyte", 0.1))
        points = tuple(
            LatencyPoint(latency=l, ipc=2.0 - l / 800, normalized_ipc=(2.0 - l / 800))
            for l in (0, 400, 800)
        )
        return LatencyProfile(benchmark=name, baseline=baseline, points=points)

    def test_render_contains_plot_and_table(self):
        text = render_figure1([self.make_profile()])
        assert "Fig. 1" in text
        assert "normalized to baseline" in text
        assert "intercept lat" in text
        assert "~120" in text and "~220" in text

    def test_render_multiple_series(self):
        text = render_figure1(
            [self.make_profile("a"), self.make_profile("b")])
        assert "a" in text and "b" in text

    def test_intercept_column_formats_none(self):
        baseline = run_kernel(tiny_gpu(), get_benchmark("leukocyte", 0.1))
        flat = LatencyProfile(
            benchmark="flat",
            baseline=baseline,
            points=(
                LatencyPoint(0, 2.0, 2.0),
                LatencyPoint(800, 1.8, 1.8),  # never crosses 1.0
            ),
        )
        text = render_figure1([flat])
        assert ">max" in text
