"""Replacement-policy tests."""

import pytest

from repro.errors import ConfigError
from repro.cache.replacement import (
    FIFOPolicy,
    LRUPolicy,
    PLRUPolicy,
    make_policy,
)


class TestLRU:
    def test_evicts_least_recently_used(self):
        lru = LRUPolicy(1, 4)
        for way, t in [(0, 10), (1, 20), (2, 30), (3, 40)]:
            lru.on_fill(0, way, t)
        lru.on_access(0, 0, 50)  # way 0 becomes MRU
        assert lru.victim(0, [0, 1, 2, 3]) == 1

    def test_respects_candidate_restriction(self):
        lru = LRUPolicy(1, 4)
        for way, t in [(0, 10), (1, 20), (2, 30), (3, 40)]:
            lru.on_fill(0, way, t)
        assert lru.victim(0, [2, 3]) == 2

    def test_per_set_independence(self):
        lru = LRUPolicy(2, 2)
        lru.on_fill(0, 0, 1)
        lru.on_fill(0, 1, 2)
        lru.on_fill(1, 0, 9)
        lru.on_fill(1, 1, 3)
        assert lru.victim(0, [0, 1]) == 0
        assert lru.victim(1, [0, 1]) == 1


class TestFIFO:
    def test_evicts_oldest_install_despite_access(self):
        fifo = FIFOPolicy(1, 2)
        fifo.on_fill(0, 0, 1)
        fifo.on_fill(0, 1, 2)
        fifo.on_access(0, 0, 99)  # FIFO ignores accesses
        assert fifo.victim(0, [0, 1]) == 0


class TestPLRU:
    def test_requires_pow2_assoc(self):
        with pytest.raises(ConfigError):
            PLRUPolicy(1, 3)

    def test_victim_avoids_recent_way(self):
        plru = PLRUPolicy(1, 4)
        for way in range(4):
            plru.on_fill(0, way, way)
        plru.on_access(0, 2, 10)
        victim = plru.victim(0, [0, 1, 2, 3])
        assert victim != 2

    def test_fallback_when_leaf_not_candidate(self):
        plru = PLRUPolicy(1, 4)
        for way in range(4):
            plru.on_fill(0, way, way)
        # Whatever the tree points to, restricting to one candidate works.
        assert plru.victim(0, [1]) == 1

    def test_repeated_touch_cycles_through_ways(self):
        plru = PLRUPolicy(1, 4)
        victims = set()
        for _ in range(8):
            v = plru.victim(0, [0, 1, 2, 3])
            victims.add(v)
            plru.on_fill(0, v, 0)
        assert victims == {0, 1, 2, 3}  # approximates LRU coverage


class TestFactory:
    @pytest.mark.parametrize("name", ["lru", "fifo", "plru"])
    def test_known_policies(self, name):
        assert make_policy(name, 4, 4).name == name

    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            make_policy("random", 4, 4)
