"""Tests for the custom lint pass (repro.analysis.lint).

One positive and one negative case per rule, the noqa escape hatch, the
hot-path inference from file paths, the CLI exit codes — and the meta
check that the shipped source tree itself lints clean.
"""

from pathlib import Path

import pytest

from repro.analysis.lint import lint_paths, lint_source, run_lint
from repro.errors import UsageError

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def codes(source, path="src/repro/core/x.py", hot=None):
    return [v.code for v in lint_source(source, path, hot=hot)]


class TestREP001Nondeterminism:
    def test_global_random_flagged(self):
        assert codes("import random\nx = random.random()\n") == ["REP001"]

    def test_global_randint_flagged(self):
        assert codes("import random\nx = random.randint(0, 7)\n") == ["REP001"]

    def test_imported_random_name_flagged(self):
        source = "from random import shuffle\nshuffle(items)\n"
        assert codes(source) == ["REP001"]

    def test_seeded_generator_allowed(self):
        source = "import random\nrng = random.Random(1)\nx = rng.random()\n"
        assert codes(source) == []

    def test_wall_clock_flagged(self):
        assert codes("import time\nt = time.time()\n") == ["REP001"]
        assert codes("import time\nt = time.perf_counter()\n") == ["REP001"]

    def test_datetime_now_flagged(self):
        source = "import datetime\nt = datetime.datetime.now()\n"
        assert codes(source) == ["REP001"]


class TestREP002Assert:
    def test_assert_flagged(self):
        assert codes("assert x is not None\n") == ["REP002"]

    def test_raise_instead_passes(self):
        source = (
            "from repro.errors import SimulationError\n"
            "if x is None:\n"
            "    raise SimulationError('x vanished')\n"
        )
        assert codes(source) == []


class TestREP003ExceptionHierarchy:
    def test_builtin_raise_flagged(self):
        assert codes("raise ValueError('bad')\n") == ["REP003"]
        assert codes("raise RuntimeError('bad')\n") == ["REP003"]

    def test_repro_error_allowed(self):
        assert codes("raise SimulationError('bad')\n") == []
        assert codes("raise errors.ConfigError('bad')\n") == []

    def test_usage_error_allowed(self):
        assert codes("raise UsageError('bad')\n") == []

    def test_not_implemented_allowed(self):
        assert codes("raise NotImplementedError\n") == []

    def test_bare_reraise_allowed(self):
        assert codes("try:\n    f()\nexcept KeyError:\n    raise\n") == []

    def test_local_subclass_allowed(self):
        source = (
            "class MyError(SimulationError):\n"
            "    pass\n"
            "raise MyError('bad')\n"
        )
        assert codes(source) == []

    def test_unknown_name_not_flagged(self):
        # A name the linter cannot resolve is given the benefit of the doubt.
        assert codes("raise some_exception_factory()\n") == []


class TestREP004HotPathSlots:
    BARE = "from dataclasses import dataclass\n@dataclass\nclass P:\n    x: int\n"
    SLOTTED = (
        "from dataclasses import dataclass\n"
        "@dataclass(slots=True)\nclass P:\n    x: int\n"
    )

    def test_hot_path_dataclass_without_slots_flagged(self):
        assert codes(self.BARE, path="src/repro/mem/x.py") == ["REP004"]

    def test_hot_path_dataclass_with_slots_passes(self):
        assert codes(self.SLOTTED, path="src/repro/cache/x.py") == []

    def test_cold_path_dataclass_exempt(self):
        assert codes(self.BARE, path="src/repro/core/x.py") == []

    def test_hot_inferred_from_each_hot_package(self):
        for package in ("mem", "cache", "dram", "icnt", "cores"):
            path = f"src/repro/{package}/x.py"
            assert codes(self.BARE, path=path) == ["REP004"], package

    def test_explicit_hot_overrides_path(self):
        assert codes(self.BARE, path="elsewhere.py", hot=True) == ["REP004"]
        assert codes(self.BARE, path="src/repro/dram/x.py", hot=False) == []

    def test_plain_class_exempt(self):
        assert codes("class P:\n    pass\n", hot=True) == []


class TestREP005FrozenConfigMutation:
    def test_direct_config_store_flagged(self):
        assert codes("config.l1_size = 4\n") == ["REP005"]

    def test_nested_config_store_flagged(self):
        assert codes("self._config.l1.assoc = 2\n") == ["REP005"]
        assert codes("self.cfg.dram.channels = 8\n") == ["REP005"]

    def test_augmented_store_flagged(self):
        assert codes("config.l1.assoc += 1\n") == ["REP005"]

    def test_binding_a_config_attribute_allowed(self):
        # Storing *the config itself* onto self is the normal idiom.
        assert codes("self.config = config\n") == []

    def test_reading_config_allowed(self):
        assert codes("assoc = config.l1.assoc\n") == []


class TestSuppression:
    def test_targeted_noqa(self):
        assert codes("assert x  # noqa: REP002\n") == []

    def test_bare_noqa(self):
        assert codes("assert x  # noqa\n") == []

    def test_noqa_for_other_code_does_not_suppress(self):
        assert codes("assert x  # noqa: REP001\n") == ["REP002"]


class TestEntryPoints:
    def test_syntax_error_raises_usage_error(self):
        with pytest.raises(UsageError, match="syntax error"):
            lint_source("def broken(:\n", "bad.py")

    def test_violations_sorted_by_line(self):
        source = "assert b\nassert a\n"
        violations = lint_source(source, "x.py")
        assert [v.line for v in violations] == [1, 2]

    def test_render_format(self):
        violation = lint_source("assert x\n", "pkg/mod.py")[0]
        assert violation.render() == (
            "pkg/mod.py:1:0: REP002 assert vanishes under python -O; raise "
            "SimulationError (or another ReproError) for protocol violations"
        )

    def test_lint_paths_walks_directories(self, tmp_path):
        package = tmp_path / "repro" / "mem"
        package.mkdir(parents=True)
        (package / "bad.py").write_text("assert x\n")
        (package / "good.py").write_text("x = 1\n")
        pycache = package / "__pycache__"
        pycache.mkdir()
        (pycache / "skipped.py").write_text("assert x\n")
        violations = lint_paths([str(tmp_path)])
        assert [v.code for v in violations] == ["REP002"]

    def test_lint_paths_rejects_non_python(self, tmp_path):
        target = tmp_path / "notes.txt"
        target.write_text("hello")
        with pytest.raises(UsageError, match="not a python file"):
            lint_paths([str(target)])

    def test_run_lint_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert run_lint([str(clean)]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\nx = random.random()\n")
        assert run_lint([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out
        assert "1 violation(s)" in out


class TestShippedTreeIsClean:
    def test_src_lints_clean(self):
        # The tree the repo ships must satisfy its own lint rules.
        assert lint_paths([str(REPO_SRC)]) == []
