"""Scaling-coefficient sweep tests."""

import pytest

from repro.core.scaling_curve import (
    ScalingCurve,
    render_scaling_curves,
    scale_level_by,
    sweep_scaling_coefficient,
)
from repro.errors import ConfigError
from repro.sim.config import GPUConfig, tiny_gpu


class TestScaleLevelBy:
    def test_factor_one_is_identity(self):
        assert scale_level_by(GPUConfig(), "l2", 1) == GPUConfig()

    def test_factor_four_matches_table_scaling(self):
        from repro.core.design_space import scale_level

        assert scale_level_by(GPUConfig(), "l2", 4) == scale_level(
            GPUConfig(), "l2")
        assert scale_level_by(GPUConfig(), "dram", 4) == scale_level(
            GPUConfig(), "dram")

    def test_bus_width_scales_sqrt(self):
        cfg8 = scale_level_by(GPUConfig(), "dram", 8)
        # sqrt(8) ~ 2.83 -> next pow2 = 4 -> 16 bytes
        assert cfg8.dram.bus_bytes == 16
        assert cfg8.dram.banks == 16 * 8

    def test_non_pow2_factor_rejected(self):
        with pytest.raises(ConfigError):
            scale_level_by(GPUConfig(), "l2", 3)


class TestSweep:
    @pytest.fixture(scope="class")
    def curve(self):
        return sweep_scaling_coefficient(
            tiny_gpu(), "l2", factors=(1, 4), benchmarks=("nn",),
            iteration_scale=0.15)

    def test_baseline_factor_always_included(self):
        curve = sweep_scaling_coefficient(
            tiny_gpu(), "l2", factors=(4,), benchmarks=("leukocyte",),
            iteration_scale=0.1)
        assert 1 in curve.runs

    def test_average_speedup_at_one_is_one(self, curve):
        assert curve.average_speedup(1) == pytest.approx(1.0)

    def test_scaling_does_not_degrade(self, curve):
        assert curve.average_speedup(4) >= 0.95

    def test_render(self, curve):
        text = render_scaling_curves([curve])
        assert "l2" in text and "saturates" in text


class TestSaturation:
    def make_curve(self, speedups):
        class FakeMetrics:
            def __init__(self, ipc):
                self.ipc = ipc

        runs = {
            factor: {"b": FakeMetrics(s)} for factor, s in speedups.items()
        }
        return ScalingCurve(level="x", runs=runs)

    def test_saturation_detected(self):
        curve = self.make_curve({1: 1.0, 2: 1.5, 4: 1.52, 8: 1.53})
        assert curve.saturation_factor() == 2

    def test_no_saturation_returns_last(self):
        curve = self.make_curve({1: 1.0, 2: 1.5, 4: 2.0, 8: 2.5})
        assert curve.saturation_factor() == 8
