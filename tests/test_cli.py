"""CLI smoke tests (tiny config, heavily scaled down)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])

    def test_defaults(self):
        args = build_parser().parse_args(["run", "nn"])
        assert args.config == "small"
        assert args.scale == 1.0


class TestCommands:
    def test_suite(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "lbm" in out and "leukocyte" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Flit size (crossbar)" in out
        assert "Memory pipeline width" in out

    def test_run(self, capsys):
        assert main(["run", "nn", "--config", "tiny", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "L2 accessQ full" in out

    def test_run_magic(self, capsys):
        assert main([
            "run", "nn", "--config", "tiny", "--scale", "0.1",
            "--magic-latency", "100",
        ]) == 0
        assert "IPC" in capsys.readouterr().out

    def test_congestion(self, capsys):
        assert main([
            "congestion", "--config", "tiny", "--scale", "0.1",
            "--benchmarks", "nn", "leukocyte",
        ]) == 0
        out = capsys.readouterr().out
        assert "Section III" in out

    def test_latency_profile(self, capsys):
        assert main([
            "latency-profile", "--config", "tiny", "--scale", "0.1",
            "--benchmarks", "nn", "--latencies", "0", "300",
        ]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out

    def test_explore(self, capsys):
        assert main([
            "explore", "--config", "tiny", "--scale", "0.1",
            "--benchmarks", "nn",
        ]) == 0
        out = capsys.readouterr().out
        assert "Speedup over baseline" in out


class TestAnalysisCommands:
    def test_diagnose(self, capsys):
        assert main([
            "diagnose", "--config", "tiny", "--scale", "0.1",
            "--benchmarks", "leukocyte",
        ]) == 0
        out = capsys.readouterr().out
        assert "Bottleneck classification" in out

    def test_breakdown(self, capsys):
        assert main([
            "breakdown", "nn", "--config", "tiny", "--scale", "0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert "Latency breakdown" in out
        assert "congestion share" in out

    def test_replicate(self, capsys):
        assert main([
            "replicate", "nn", "--config", "tiny", "--scale", "0.1",
            "--seeds", "1", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Replication" in out and "CV" in out

    def test_export(self, capsys, tmp_path):
        target = tmp_path / "out.csv"
        assert main([
            "export", str(target), "--config", "tiny", "--scale", "0.1",
            "--benchmarks", "nn",
        ]) == 0
        assert target.exists()
        assert "benchmark" in target.read_text().splitlines()[0]

    def test_validate_parser_wiring(self):
        args = build_parser().parse_args(["validate", "--scale", "0.2"])
        assert args.scale == 0.2
        assert args.func.__name__ == "_cmd_validate"


class TestTelemetryCommands:
    def test_run_timeline(self, capsys):
        assert main([
            "run", "nn", "--config", "tiny", "--scale", "0.1",
            "--timeline", "--window", "100",
        ]) == 0
        out = capsys.readouterr().out
        assert "Cycle-windowed telemetry" in out
        assert "dram bus util" in out

    def test_profile(self, capsys, tmp_path):
        target = tmp_path / "profile.json"
        assert main([
            "profile", "sc", "--config", "tiny", "--scale", "0.1",
            "--json", str(target),
        ]) == 0
        out = capsys.readouterr().out
        assert "Top-down cycle accounting" in out
        assert "conserved=true" in out
        document = json.loads(target.read_text())
        assert document["benchmark"] == "sc"
        assert sum(document["classes"].values()) == document["sm_cycles"]

    def test_profile_diff(self, capsys, tmp_path):
        target = tmp_path / "diff.json"
        assert main([
            "profile", "sc", "--config", "tiny", "--scale", "0.1",
            "--diff", "baseline", "l2", "--json", str(target),
        ]) == 0
        out = capsys.readouterr().out
        assert "Profile diff" in out
        assert "speedup" in out
        document = json.loads(target.read_text())
        assert document["a"]["config"] == "baseline"
        assert document["b"]["config"] == "l2"
        assert "classes_reclaimed" in document

    def test_profile_unknown_label_exits_2(self, capsys):
        assert main([
            "profile", "sc", "--config", "tiny", "--scale", "0.1",
            "--config-label", "turbo",
        ]) == 2
        assert "turbo" in capsys.readouterr().err

    def test_trace_writes_chrome_trace(self, capsys, tmp_path):
        target = tmp_path / "trace.json"
        assert main([
            "trace", "nn", "--config", "tiny", "--scale", "0.1",
            "--out", str(target), "--stride", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "spans" in out and "Per-hop latencies" in out
        trace = json.loads(target.read_text())
        assert trace["traceEvents"]
        assert trace["otherData"]["stride"] == 1

    def test_export_json_format(self, capsys, tmp_path):
        target = tmp_path / "out.json"
        assert main([
            "export", str(target), "--format", "json",
            "--config", "tiny", "--scale", "0.1", "--benchmarks", "nn",
        ]) == 0
        assert "(json)" in capsys.readouterr().out
        runs = json.loads(target.read_text())
        assert runs[0]["benchmark"] == "nn"
        assert "full_fraction" in runs[0]["l2_accessq"]  # nested queues

    def test_repro_error_exits_2(self, capsys):
        # stride 0 reaches the telemetry UsageError, a ReproError:
        # main() reports it as a one-liner instead of a traceback.
        assert main([
            "trace", "nn", "--config", "tiny", "--scale", "0.1",
            "--stride", "0",
        ]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "stride" in err
