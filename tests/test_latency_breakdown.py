"""Per-hop latency breakdown tests."""

import pytest

from repro.core.latency_breakdown import (
    SEGMENTS,
    LatencyBreakdown,
    congestion_share,
    measure_latency_breakdown,
)
from repro.mem.request import AccessKind, MemoryRequest
from repro.sim.config import tiny_gpu
from repro.workloads.synthetic import SyntheticKernelSpec, build_kernel

KERNEL = build_kernel(SyntheticKernelSpec(
    name="bk", pattern="stream", iterations=8, compute_per_iter=2,
    loads_per_iter=2, mlp_limit=4))


def synthetic_request(stamps, l2_miss=False):
    r = MemoryRequest(rid=0, kind=AccessKind.LOAD, line=0, sm_id=0, warp_id=0)
    r.l2_miss = l2_miss
    r.timestamps.update(stamps)
    return r


class TestObserve:
    def test_segments_computed_from_timestamps(self):
        breakdown = LatencyBreakdown("x")
        breakdown.observe(synthetic_request({
            "l1_miss": 0, "l2_in": 10, "l2_probed": 30,
            "l2_out": 35, "l1_fill": 95,
        }))
        assert breakdown.mean("l1_to_l2") == 10
        assert breakdown.mean("l2_queue") == 20
        assert breakdown.mean("l2_hit_out") == 5
        assert breakdown.mean("response_network") == 60
        assert breakdown.total_l2_hit.mean == 95
        assert breakdown.total_l2_miss.count == 0

    def test_miss_request_classified_separately(self):
        breakdown = LatencyBreakdown("x")
        breakdown.observe(synthetic_request(
            {"l1_miss": 0, "l1_fill": 300}, l2_miss=True))
        assert breakdown.total_l2_miss.mean == 300
        assert breakdown.total_l2_hit.count == 0

    def test_missing_hops_are_skipped(self):
        breakdown = LatencyBreakdown("x")
        breakdown.observe(synthetic_request({"l1_miss": 0}))
        assert breakdown.mean("dram_service") == 0.0


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def breakdown(self):
        return measure_latency_breakdown(tiny_gpu(), KERNEL)

    def test_totals_populated(self, breakdown):
        assert breakdown.total_l2_miss.count > 0

    def test_segment_sum_close_to_total(self, breakdown):
        """Miss-path segments roughly tile the total round trip."""
        path = (
            breakdown.mean("l1_to_l2")
            + breakdown.mean("l2_queue")
            + breakdown.mean("l2_to_dram")
            + breakdown.mean("dram_service")
            + breakdown.mean("dram_to_l2")
            + breakdown.mean("response_network")
        )
        total = breakdown.total_l2_miss.mean
        assert path == pytest.approx(total, rel=0.35)

    def test_table_renders(self, breakdown):
        table = breakdown.to_table()
        assert "dram_service" in table
        assert "TOTAL (L2 misses)" in table

    def test_congestion_share_in_unit_interval(self, breakdown):
        share = congestion_share(breakdown, tiny_gpu())
        assert 0.0 <= share < 1.0

    def test_by_benchmark_name(self):
        breakdown = measure_latency_breakdown(
            tiny_gpu(), "nn", iteration_scale=0.1)
        assert breakdown.benchmark == "nn"


def test_segment_table_is_complete():
    assert set(SEGMENTS) == {
        "l1_to_l2", "l2_queue", "l2_to_dram", "dram_service",
        "dram_to_l2", "l2_hit_out", "response_network",
    }
