"""Tests for the characterization layer: latency profile, congestion,
explorer, synergy, reports.

Runs use the tiny configuration and shortened kernels so the whole module
executes in seconds.
"""

import pytest

from repro.core.congestion import CongestionReport, measure_congestion
from repro.core.explorer import (
    SECTION_IV_CONFIGS,
    explore_design_space,
    sweep_parameter,
)
from repro.core.latency_profile import (
    LatencyPoint,
    LatencyProfile,
    profile_latency_tolerance,
)
from repro.core.metrics import RunMetrics, run_kernel
from repro.core.report import render_congestion, render_figure1, render_section_iv
from repro.core.synergy import analyze_synergy
from repro.errors import ReproError
from repro.sim.config import tiny_gpu
from repro.workloads.synthetic import SyntheticKernelSpec, build_kernel

#: A memory-intense kernel that responds to both latency and bandwidth.
PROBE = build_kernel(SyntheticKernelSpec(
    name="probe", pattern="stream", iterations=8, compute_per_iter=2,
    loads_per_iter=2, mlp_limit=4))

BENCHES = ("nn", "leukocyte")


class TestLatencyProfile:
    @pytest.fixture(scope="class")
    def profile(self):
        return profile_latency_tolerance(
            PROBE, tiny_gpu(), latencies=(0, 100, 300, 600))

    def test_points_cover_requested_latencies(self, profile):
        assert [p.latency for p in profile.points] == [0, 100, 300, 600]

    def test_curve_decreases(self, profile):
        ipcs = [p.ipc for p in profile.points]
        assert ipcs == sorted(ipcs, reverse=True)

    def test_normalization_against_baseline(self, profile):
        for p in profile.points:
            assert p.normalized_ipc == pytest.approx(
                p.ipc / profile.baseline_ipc)

    def test_intercept_between_bracketing_points(self, profile):
        intercept = profile.intercept_latency()
        assert intercept is not None
        below = max(p.latency for p in profile.points
                    if p.normalized_ipc >= 1.0)
        above = min(p.latency for p in profile.points
                    if p.normalized_ipc <= 1.0)
        assert below <= intercept <= above

    def test_intercept_approximates_measured_latency(self, profile):
        """The paper's methodology check: the 1.0x crossing estimates the
        baseline's average L1 miss latency."""
        intercept = profile.intercept_latency()
        measured = profile.baseline_avg_miss_latency
        assert abs(intercept - measured) / measured < 0.6

    def test_plateau_at_or_after_zero(self, profile):
        assert profile.plateau_latency() >= 0

    def test_reuses_supplied_baseline(self):
        base = run_kernel(tiny_gpu(), PROBE)
        prof = profile_latency_tolerance(
            PROBE, tiny_gpu(), latencies=(0,), baseline=base)
        assert prof.baseline is base

    def test_benchmark_by_name(self):
        prof = profile_latency_tolerance(
            "nn", tiny_gpu(), latencies=(0, 200), iteration_scale=0.1)
        assert prof.benchmark == "nn"


class TestSyntheticProfileHelpers:
    def make(self, pairs, baseline_ipc=1.0):
        base = run_kernel(tiny_gpu().with_magic_memory(0), PROBE)
        points = tuple(
            LatencyPoint(latency=l, ipc=n * baseline_ipc, normalized_ipc=n)
            for l, n in pairs
        )
        return LatencyProfile(benchmark="x", baseline=base, points=points)

    def test_intercept_interpolation(self):
        prof = self.make([(0, 2.0), (100, 1.5), (200, 0.5), (300, 0.25)])
        assert prof.intercept_latency() == pytest.approx(150.0)

    def test_intercept_none_when_curve_stays_above(self):
        prof = self.make([(0, 3.0), (100, 2.0)])
        assert prof.intercept_latency() is None
        assert prof.congestion_excess() is None

    def test_intercept_at_first_point_when_below(self):
        prof = self.make([(0, 0.9), (100, 0.5)])
        assert prof.intercept_latency() == 0.0

    def test_plateau_tolerance(self):
        prof = self.make([(0, 2.0), (50, 1.98), (100, 1.5), (200, 0.6)])
        assert prof.plateau_latency(tolerance=0.05) == 50

    def test_congestion_excess_positive_under_congestion(self):
        prof = self.make([(0, 2.0), (400, 1.01), (800, 0.5)])
        assert prof.congestion_excess() > 0


class TestCongestion:
    @pytest.fixture(scope="class")
    def report(self):
        return measure_congestion(
            tiny_gpu(), benchmarks=BENCHES, iteration_scale=0.15)

    def test_report_has_all_benchmarks(self, report):
        assert set(report.runs) == set(BENCHES)

    def test_fractions_in_unit_interval(self, report):
        for stat in (
            report.avg_l2_access_queue_full,
            report.avg_dram_queue_full,
            report.avg_l1_miss_queue_full,
            report.avg_l2_miss_queue_full,
            report.avg_l2_response_queue_full,
        ):
            assert 0.0 <= stat <= 1.0

    def test_table_renders(self, report):
        table = report.to_table()
        for name in BENCHES:
            assert name in table
        assert "average" in table

    def test_render_congestion_mentions_paper_values(self, report):
        text = render_congestion(report)
        assert "46%" in text and "39%" in text


class TestExplorer:
    @pytest.fixture(scope="class")
    def result(self):
        return explore_design_space(
            tiny_gpu(),
            benchmarks=BENCHES,
            configs={"baseline": (), "l2": ("l2",), "dram": ("dram",),
                     "l2+dram": ("l2", "dram")},
            iteration_scale=0.15,
        )

    def test_all_cells_run(self, result):
        assert set(result.runs) == {"baseline", "l2", "dram", "l2+dram"}
        for label in result.runs:
            assert set(result.runs[label]) == set(BENCHES)

    def test_baseline_speedup_is_one(self, result):
        for bench in BENCHES:
            assert result.speedup("baseline", bench) == pytest.approx(1.0)

    def test_average_speedup_means(self, result):
        arith = result.average_speedup("l2")
        geo = result.average_speedup("l2", mean="geometric")
        assert arith >= geo > 0

    def test_average_gain_consistent(self, result):
        assert result.average_gain("l2") == pytest.approx(
            result.average_speedup("l2") - 1.0)

    def test_table_renders(self, result):
        table = result.to_table()
        assert "l2+dram" in table and "average" in table

    def test_render_section_iv(self, result):
        text = render_section_iv(result)
        assert "paper avg gain" in text

    def test_baseline_added_if_missing(self):
        result = explore_design_space(
            tiny_gpu(), benchmarks=("leukocyte",),
            configs={"l1": ("l1",)}, iteration_scale=0.1)
        assert "baseline" in result.runs


class TestSynergy:
    def test_synergy_analysis(self):
        result = explore_design_space(
            tiny_gpu(), benchmarks=BENCHES,
            configs=SECTION_IV_CONFIGS, iteration_scale=0.15)
        analysis = analyze_synergy(result)
        labels = {p.combined_label for p in analysis.pairs}
        assert labels == {"l1+l2", "l2+dram"}
        for pair in analysis.pairs:
            assert pair.synergy == pytest.approx(
                pair.combined_gain - pair.sum_of_parts)
        assert analysis.to_table()

    def test_missing_configs_raise(self):
        result = explore_design_space(
            tiny_gpu(), benchmarks=("leukocyte",),
            configs={"baseline": ()}, iteration_scale=0.1)
        with pytest.raises(ReproError):
            analyze_synergy(result)


class TestParameterSweep:
    def test_sweep_parameter(self):
        sweep = sweep_parameter(
            tiny_gpu(), "l2_access_queue", values=(4, 16),
            benchmark="nn", iteration_scale=0.1)
        assert set(sweep.points) == {4, 16}
        speedups = sweep.speedups()
        assert speedups[4] == pytest.approx(1.0)
        assert all(isinstance(m, RunMetrics) for m in sweep.points.values())


class TestFigureRendering:
    def test_render_figure1(self):
        profiles = [
            profile_latency_tolerance(
                name, tiny_gpu(), latencies=(0, 200, 400),
                iteration_scale=0.1)
            for name in BENCHES
        ]
        text = render_figure1(profiles)
        assert "Fig. 1" in text
        for name in BENCHES:
            assert name in text
