"""Bottleneck classifier tests."""

import dataclasses

import pytest

from repro.core.bottleneck import (
    Bottleneck,
    classify,
    diagnose_suite,
    peak_issue_rate,
    render_diagnoses,
)
from repro.core.metrics import QueueMetrics, RunMetrics
from repro.sim.config import tiny_gpu


def metrics(**overrides):
    """A RunMetrics with calm defaults, selectively overridden."""
    calm = QueueMetrics(0.0, 0.0, 0, 0)
    base = dict(
        benchmark="x", cycles=1000, instructions=1000, ipc=1.0,
        l1_hit_rate=0.5, l1_avg_miss_latency=150.0,
        l1_p50_miss_latency=140.0, l1_p95_miss_latency=300.0,
        l1_miss_count=100,
        l1_mshr_stall_cycles=0, l1_missq=calm,
        req_xbar_utilization=0.1, resp_xbar_utilization=0.1,
        resp_xbar_blocked_cycles=0,
        l2_hit_rate=0.5, l2_accessq=calm, l2_missq=calm, l2_respq=calm,
        l2_mshr_full_fraction=0.0, l2_reservation_fails=0, l2_writebacks=0,
        dram_schedq=calm, dram_row_hit_rate=0.5, dram_bus_utilization=0.1,
        dram_reads=100, dram_writes=0,
        mem_pipeline_stall_cycles=0, no_ready_warp_fraction=0.1,
    )
    base.update(overrides)
    return RunMetrics(**base)


def full(fraction):
    return QueueMetrics(fraction, 0.9, 100, 1000)


class TestClassify:
    def test_compute_bound(self):
        d = classify(metrics(ipc=3.5), peak_ipc=4.0)
        assert d.bottleneck is Bottleneck.COMPUTE

    def test_dram_bound(self):
        d = classify(
            metrics(ipc=0.5, dram_schedq=full(0.8), dram_bus_utilization=0.9),
            peak_ipc=4.0)
        assert d.bottleneck is Bottleneck.DRAM_BANDWIDTH

    def test_cache_hierarchy_bound(self):
        d = classify(
            metrics(ipc=0.5, l2_accessq=full(0.5), l2_respq=full(0.7)),
            peak_ipc=4.0)
        assert d.bottleneck is Bottleneck.L1_L2_BANDWIDTH

    def test_latency_bound(self):
        d = classify(
            metrics(ipc=0.8, no_ready_warp_fraction=0.8,
                    l1_avg_miss_latency=200.0),
            peak_ipc=4.0)
        assert d.bottleneck is Bottleneck.LATENCY

    def test_dram_wins_tie_against_weaker_cache_pressure(self):
        d = classify(
            metrics(ipc=0.5, dram_schedq=full(0.7), l2_accessq=full(0.5)),
            peak_ipc=4.0)
        assert d.bottleneck is Bottleneck.DRAM_BANDWIDTH

    def test_evidence_carried(self):
        d = classify(metrics(ipc=2.0), peak_ipc=4.0)
        assert d.evidence["ipc_fraction"] == pytest.approx(0.5)
        assert "describe" and "x" in d.describe()


class TestSuiteDiagnosis:
    def test_diagnose_runs_and_renders(self):
        diagnoses = diagnose_suite(
            tiny_gpu(), benchmarks=("leukocyte", "nn"), iteration_scale=0.15)
        assert len(diagnoses) == 2
        text = render_diagnoses(diagnoses)
        assert "leukocyte" in text and "nn" in text

    def test_compute_bound_benchmark_classified_compute(self):
        (d,) = diagnose_suite(
            tiny_gpu(), benchmarks=("leukocyte",), iteration_scale=0.2)
        assert d.bottleneck is Bottleneck.COMPUTE

    def test_peak_issue_rate(self):
        cfg = tiny_gpu()
        assert peak_issue_rate(cfg) == cfg.core.n_sms * cfg.core.issue_width
        bigger = dataclasses.replace(
            cfg, core=dataclasses.replace(cfg.core, issue_width=4))
        assert peak_issue_rate(bigger) == 2 * peak_issue_rate(cfg)
