"""Configuration validation and derived-quantity tests."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.sim.config import (
    CoreConfig,
    DRAMConfig,
    GPUConfig,
    ICNTConfig,
    L1Config,
    L2Config,
    fermi_gtx480,
    small_gpu,
    tiny_gpu,
)


class TestValidation:
    def test_defaults_are_valid(self):
        GPUConfig()

    def test_factories_are_valid(self):
        for factory in (fermi_gtx480, small_gpu, tiny_gpu):
            assert isinstance(factory(), GPUConfig)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_sms=0),
            dict(warps_per_sm=0),
            dict(issue_width=0),
            dict(mem_pipeline_width=0),
            dict(scheduler="bogus"),
        ],
    )
    def test_bad_core_config(self, kwargs):
        with pytest.raises(ConfigError):
            CoreConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(size_bytes=0),
            dict(assoc=0),
            dict(mshr_entries=0),
            dict(miss_queue_depth=0),
            dict(hit_latency=0),
        ],
    )
    def test_bad_l1_config(self, kwargs):
        with pytest.raises(ConfigError):
            L1Config(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(banks=3),  # not a power of two
            dict(bank_latency=0),
            dict(access_queue_depth=0),
            dict(data_port_bytes=0),
        ],
    )
    def test_bad_l2_config(self, kwargs):
        with pytest.raises(ConfigError):
            L2Config(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(sched_queue_depth=0),
            dict(banks=6),
            dict(bus_bytes=0),
            dict(row_bytes=3000),
            dict(scheduler="lifo"),
            dict(t_cas=0),
        ],
    )
    def test_bad_dram_config(self, kwargs):
        with pytest.raises(ConfigError):
            DRAMConfig(**kwargs)

    def test_bad_icnt_config(self):
        with pytest.raises(ConfigError):
            ICNTConfig(flit_bytes=0)
        with pytest.raises(ConfigError):
            ICNTConfig(network_latency=-1)

    def test_gpu_level_cross_checks(self):
        with pytest.raises(ConfigError):
            GPUConfig(n_partitions=3)
        with pytest.raises(ConfigError):
            GPUConfig(line_bytes=100)
        with pytest.raises(ConfigError):
            # L1 not divisible by line*assoc
            GPUConfig(l1=L1Config(size_bytes=1000))


class TestDerivedQuantities:
    def test_dram_transfer_cycles(self):
        cfg = GPUConfig()
        expected = cfg.line_bytes // (cfg.dram.bus_bytes * cfg.dram.data_rate)
        assert cfg.dram_transfer_cycles == expected

    def test_l2_port_cycles(self):
        cfg = GPUConfig()
        assert cfg.l2_port_cycles == cfg.line_bytes // cfg.l2.data_port_bytes

    def test_scaled_port_is_single_cycle(self):
        cfg = dataclasses.replace(
            GPUConfig(), l2=L2Config(data_port_bytes=128)
        )
        assert cfg.l2_port_cycles == 1

    def test_request_flits_read_vs_write(self):
        cfg = GPUConfig()
        read = cfg.request_flits(is_write=False)
        write = cfg.request_flits(is_write=True)
        assert write > read  # writes carry line data
        assert read == -(-cfg.icnt.header_bytes // cfg.icnt.flit_bytes)

    def test_response_transfer_cycles_shrink_with_flit_size(self):
        cfg = GPUConfig()
        big_flit = dataclasses.replace(
            cfg, icnt=dataclasses.replace(cfg.icnt, flit_bytes=16)
        )
        assert (
            big_flit.response_transfer_cycles()
            < cfg.response_transfer_cycles()
        )

    def test_with_magic_memory(self):
        cfg = GPUConfig().with_magic_memory(250)
        assert cfg.magic_memory
        assert cfg.magic_latency == 250
        # original untouched (frozen dataclass semantics)
        assert not GPUConfig().magic_memory

    def test_configs_are_frozen(self):
        cfg = GPUConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.n_partitions = 8  # noqa: REP005 - deliberately testing that the config is frozen
