"""Tests for the exception hierarchy and SanitizerError diagnostics."""

import pytest

from repro.errors import (
    ConfigError,
    CycleLimitExceeded,
    ReproError,
    SanitizerError,
    SimulationError,
    UsageError,
    WorkloadError,
)
from repro.mem.request import AccessKind, MemoryRequest


def make_request(rid, line=0x40):
    return MemoryRequest(
        rid=rid, kind=AccessKind.LOAD, line=line, sm_id=0, warp_id=1)


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", [
        ConfigError, SimulationError, CycleLimitExceeded, WorkloadError,
        UsageError, SanitizerError,
    ])
    def test_everything_derives_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_sanitizer_error_is_a_simulation_error(self):
        assert issubclass(SanitizerError, SimulationError)

    def test_usage_error_is_also_a_value_error(self):
        # Call sites guarding with ``except ValueError`` keep working.
        assert issubclass(UsageError, ValueError)
        with pytest.raises(ValueError):
            raise UsageError("bad argument")

    def test_single_except_clause_catches_all(self):
        for exc in (ConfigError("c"), SimulationError("s"),
                    WorkloadError("w"), UsageError("u"),
                    SanitizerError("z"), CycleLimitExceeded(10)):
            with pytest.raises(ReproError):
                raise exc

    def test_cycle_limit_carries_budget(self):
        exc = CycleLimitExceeded(5000, "drain never completed")
        assert exc.max_cycles == 5000
        assert "5000" in str(exc)
        assert "drain never completed" in str(exc)


class TestSanitizerErrorDiagnostics:
    def test_plain_message(self):
        exc = SanitizerError("something broke")
        assert str(exc) == "something broke"
        assert exc.invariant == ""
        assert exc.cycle is None
        assert exc.requests == ()
        assert exc.queue_occupancies == ()

    def test_invariant_and_cycle_in_message(self):
        exc = SanitizerError(
            "request lost", invariant="request-conservation", cycle=1234)
        assert str(exc).startswith("[request-conservation] request lost")
        assert "(cycle 1234)" in str(exc)

    def test_requests_dumped(self):
        requests = (make_request(7), make_request(8, line=0x99))
        exc = SanitizerError("boom", requests=requests)
        message = str(exc)
        assert "in-flight requests (2 total):" in message
        assert repr(requests[0]) in message
        assert repr(requests[1]) in message
        assert exc.requests == requests

    def test_request_dump_truncated(self):
        many = tuple(make_request(i) for i in range(40))
        exc = SanitizerError("boom", requests=many)
        message = str(exc)
        assert "in-flight requests (40 total):" in message
        assert repr(many[SanitizerError.MAX_DUMPED_REQUESTS - 1]) in message
        assert repr(many[SanitizerError.MAX_DUMPED_REQUESTS]) not in message
        assert "... and 24 more" in message
        # The full tuple is preserved on the exception object.
        assert len(exc.requests) == 40

    def test_queue_occupancies_rendered_non_empty_only(self):
        exc = SanitizerError(
            "boom",
            queue_occupancies=(("l2.accessq", 8, 8), ("dram.schedq", 0, 16)))
        message = str(exc)
        assert "l2.accessq: 8/8" in message
        assert "dram.schedq" not in message

    def test_all_empty_queues_render_no_section(self):
        exc = SanitizerError(
            "boom", queue_occupancies=(("q", 0, 4),))
        assert "queue occupancies" not in str(exc)

    def test_full_diagnostic_composition(self):
        exc = SanitizerError(
            "2 problems",
            invariant="epoch-check",
            cycle=99,
            requests=(make_request(3),),
            queue_occupancies=(("l1.missq", 2, 4),))
        lines = str(exc).splitlines()
        assert lines[0] == "[epoch-check] 2 problems (cycle 99)"
        assert any("MemoryRequest(#3" in line for line in lines)
        assert "  l1.missq: 2/4" in lines
